"""Whole-index self-verification: the dual-structure invariants, checked.

The paper's correctness argument rests on structural properties it states
but never mechanically verifies: a word never has both a short and a long
list (§2), bucket contents never exceed BucketSize (§2), every chunk the
directory points at is allocated disk space (§3), and the RELEASE list plus
shadow flush regions account for every other allocated block (§3).  This
module turns those sentences into :func:`check_index`, which any test,
recovery path, or operator can run against a live index.

``check_index`` recomputes every quantity from the primary structures and
compares — it never trusts a cached counter, so it also catches accounting
drift in :class:`~repro.core.index.IndexStats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..storage.block import blocks_for_postings
from ..storage.freelist import BuddyFreeList
from .delta import FrozenStateError

__all__ = [
    "FrozenStateError",
    "InvariantError",
    "InvariantReport",
    "Violation",
    "check_index",
    "check_frozen",
    "freeze_index",
]


class InvariantError(Exception):
    """Raised by :meth:`InvariantReport.raise_if_failed` on violations."""

    def __init__(self, report: "InvariantReport") -> None:
        super().__init__(str(report))
        self.report = report


@dataclass(frozen=True)
class Violation:
    """One broken invariant: a short machine code plus the evidence."""

    code: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.code}] {self.detail}"


@dataclass
class InvariantReport:
    """Outcome of one :func:`check_index` run."""

    violations: list[Violation] = field(default_factory=list)
    checks: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, code: str, detail: str) -> None:
        self.violations.append(Violation(code, detail))

    def raise_if_failed(self) -> None:
        if not self.ok:
            raise InvariantError(self)

    def __str__(self) -> str:
        if self.ok:
            return f"ok ({self.checks} checks)"
        lines = [f"{len(self.violations)} violation(s) in {self.checks} checks:"]
        lines += [f"  {v}" for v in self.violations]
        return "\n".join(lines)


def _check_structure_exclusivity(index, report: InvariantReport) -> None:
    """§2: a word never has both a short list and a long list."""
    for word in index.longlists.directory.words():
        report.checks += 1
        if index.buckets.contains(word):
            report.add(
                "dual-structure",
                f"word {word} has both a bucket short list and a long list",
            )


def _check_buckets(index, report: InvariantReport) -> None:
    """Bucket occupancy and per-bucket posting accounting."""
    for bucket_id, bucket in enumerate(index.buckets.buckets):
        report.checks += 1
        if bucket.size > bucket.capacity:
            report.add(
                "bucket-overflow",
                f"bucket {bucket_id} holds {bucket.size} units, capacity "
                f"{bucket.capacity}",
            )
        actual = sum(len(p) for p in bucket.lists.values())
        if actual != bucket.npostings:
            report.add(
                "bucket-accounting",
                f"bucket {bucket_id} caches npostings={bucket.npostings}, "
                f"lists hold {actual}",
            )


def _live_chunks(index):
    """Every chunk the index believes it owns, labelled by owner."""
    for entry in index.longlists.directory.entries():
        for chunk in entry.chunks:
            yield f"word {entry.word}", chunk
    for chunk in index.longlists.release:
        yield "RELEASE", chunk
    for chunk in index.flusher._bucket_regions:
        yield "bucket region", chunk
    if index.flusher._directory_region is not None:
        yield "directory region", index.flusher._directory_region


def _check_chunk_geometry(index, report: InvariantReport) -> None:
    """Chunks lie inside their disks, don't overflow, don't overlap."""
    block_postings = index.config.block_postings
    per_disk: dict[int, list[tuple[str, object]]] = {}
    for owner, chunk in _live_chunks(index):
        report.checks += 1
        if not 0 <= chunk.disk < index.array.ndisks:
            report.add(
                "chunk-disk", f"{owner}: chunk on unknown disk {chunk.disk}"
            )
            continue
        nblocks = index.array.disks[chunk.disk].profile.nblocks
        if chunk.start < 0 or chunk.start + chunk.nblocks > nblocks:
            report.add(
                "chunk-bounds",
                f"{owner}: chunk [{chunk.start}, "
                f"{chunk.start + chunk.nblocks}) outside disk {chunk.disk} "
                f"of {nblocks} blocks",
            )
        if chunk.npostings > chunk.capacity(block_postings):
            report.add(
                "chunk-overfull",
                f"{owner}: chunk holds {chunk.npostings} postings, capacity "
                f"{chunk.capacity(block_postings)}",
            )
        per_disk.setdefault(chunk.disk, []).append((owner, chunk))
    for disk_id, chunks in per_disk.items():
        chunks.sort(key=lambda oc: oc[1].start)
        for (owner_a, a), (owner_b, b) in zip(chunks, chunks[1:]):
            report.checks += 1
            if a.start + a.nblocks > b.start:
                report.add(
                    "chunk-overlap",
                    f"disk {disk_id}: {owner_a} chunk [{a.start}, "
                    f"{a.start + a.nblocks}) overlaps {owner_b} chunk at "
                    f"{b.start}",
                )


def _check_allocation_partition(index, report: InvariantReport) -> None:
    """Free space and the index's chunks partition each disk exactly.

    Every live chunk must avoid the free intervals, and together the live
    chunks must account for every allocated block — a mismatch means leaked
    or double-counted disk space.
    """
    owned: dict[int, int] = {}
    intervals_by_disk: dict[int, list[tuple[int, int]]] = {}
    for disk_id, disk in enumerate(index.array.disks):
        report.checks += 1
        try:
            disk.freelist.check_invariants()
        except AssertionError as exc:
            report.add("freelist", f"disk {disk_id}: {exc}")
        if not isinstance(disk.freelist, BuddyFreeList):
            intervals_by_disk[disk_id] = list(disk.freelist.intervals())
    for owner, chunk in _live_chunks(index):
        owned[chunk.disk] = owned.get(chunk.disk, 0) + chunk.nblocks
        for start, length in intervals_by_disk.get(chunk.disk, ()):
            if chunk.start < start + length and start < chunk.start + chunk.nblocks:
                report.add(
                    "chunk-in-free-space",
                    f"{owner}: chunk [{chunk.start}, "
                    f"{chunk.start + chunk.nblocks}) on disk {chunk.disk} "
                    f"intersects free interval [{start}, {start + length})",
                )
    for disk_id, disk in enumerate(index.array.disks):
        report.checks += 1
        # Buddy allocation rounds requests up to powers of two, so owned
        # chunk sizes legitimately undercount allocated blocks there.
        if isinstance(disk.freelist, BuddyFreeList):
            continue
        if owned.get(disk_id, 0) != disk.allocated_blocks:
            report.add(
                "space-leak",
                f"disk {disk_id}: free list says {disk.allocated_blocks} "
                f"blocks allocated, live chunks own {owned.get(disk_id, 0)}",
            )


def _check_contents(index, report: InvariantReport) -> None:
    """Content mode: chunk payloads decode to what the directory claims."""
    if not index.config.store_contents:
        return
    content_cls = index.longlists.content_cls
    block_postings = index.config.block_postings
    for entry in index.longlists.directory.entries():
        report.checks += 1
        decoded = content_cls()
        for chunk in entry.chunks:
            data_blocks = blocks_for_postings(chunk.npostings, block_postings)
            chunk_postings = content_cls()
            # Read the raw block store directly: no trace ops, no fault-plan
            # counters — the checker must never perturb what it verifies.
            store = index.array.disks[chunk.disk]._blocks
            for raw in (
                store.get(b, b"")
                for b in range(chunk.start, chunk.start + data_blocks)
            ):
                try:
                    chunk_postings.extend(content_cls.decode(raw))
                except ValueError as exc:
                    report.add(
                        "content-corrupt",
                        f"word {entry.word}: undecodable block in chunk at "
                        f"disk {chunk.disk} start {chunk.start}: {exc}",
                    )
                    break
            else:
                if len(chunk_postings) != chunk.npostings:
                    report.add(
                        "content-count",
                        f"word {entry.word}: chunk at disk {chunk.disk} "
                        f"start {chunk.start} decodes to "
                        f"{len(chunk_postings)} postings, directory says "
                        f"{chunk.npostings}",
                    )
                try:
                    decoded.extend(chunk_postings)
                except ValueError as exc:
                    report.add(
                        "content-order",
                        f"word {entry.word}: postings not increasing across "
                        f"chunks: {exc}",
                    )


def _check_posting_totals(index, report: InvariantReport) -> None:
    """Per-word totals seen by queries match the structures' own counts."""
    words = set(index.longlists.directory.words())
    words.update(index.buckets.words())
    words.update(w for w, _ in index.memory.items())
    for word in words:
        report.checks += 1
        expected = 0
        entry = index.longlists.directory.get(word)
        if entry is not None:
            expected += sum(c.npostings for c in entry.chunks)
        short = index.buckets.get(word)
        if short is not None:
            expected += len(short)
        pending = index.memory.get(word)
        if pending is not None:
            expected += len(pending)
        got = index.posting_count(word)
        if got != expected:
            report.add(
                "posting-total",
                f"word {word}: posting_count() says {got}, structures hold "
                f"{expected}",
            )


def _check_stats(index, report: InvariantReport) -> None:
    """IndexStats utilization accounting matches recomputed ground truth."""
    stats = index.stats()
    directory = index.longlists.directory
    entries = list(directory.entries())
    ground = {
        "long_words": len(entries),
        "long_chunks": sum(e.nchunks for e in entries),
        "long_postings": sum(
            sum(c.npostings for c in e.chunks) for e in entries
        ),
        "long_blocks": sum(
            sum(c.nblocks for c in e.chunks) for e in entries
        ),
        "bucket_words": sum(b.nwords for b in index.buckets.buckets),
        "bucket_postings": sum(
            sum(len(p) for p in b.lists.values())
            for b in index.buckets.buckets
        ),
        "disk_allocated_blocks": sum(
            d.freelist.allocated_blocks for d in index.array.disks
        ),
        "disk_total_blocks": sum(
            d.profile.nblocks for d in index.array.disks
        ),
    }
    for name, truth in ground.items():
        report.checks += 1
        if getattr(stats, name) != truth:
            report.add(
                "stats-drift",
                f"IndexStats.{name} = {getattr(stats, name)}, recomputed "
                f"ground truth = {truth}",
            )
    report.checks += 1
    long_blocks = ground["long_blocks"]
    truth_util = (
        1.0
        if long_blocks == 0
        else ground["long_postings"]
        / (long_blocks * index.config.block_postings)
    )
    if abs(stats.long_utilization - truth_util) > 1e-12:
        report.add(
            "stats-drift",
            f"IndexStats.long_utilization = {stats.long_utilization}, "
            f"recomputed = {truth_util}",
        )


def freeze_index(index) -> None:
    """Arm the publish-time write barrier on a cloned index.

    Incremental copy-on-write publication shares untouched buckets,
    chunks, directory entries, and block maps between consecutive
    snapshots, so a published snapshot must never be mutated.  Freezing
    sets a flag the mutation entry points check — the disks
    (write/free/allocate), the bucket manager (insert/remove), the
    long-list manager (append/rewrite/end_batch), the flush path, and
    the deletion manager — turning any sharing violation into an
    immediate :class:`FrozenStateError` instead of silent corruption of
    other snapshots.

    Reads stay unrestricted: query-side counters and traces may still
    advance on a frozen index.  Intended for debug/check mode; the flag
    costs one attribute test per mutation when armed.
    """
    index.frozen = True
    index.buckets.frozen = True
    index.longlists.frozen = True
    for disk in index.array.disks:
        disk.frozen = True


def check_frozen(index) -> bool:
    """True when ``freeze_index`` has armed the barrier on this index."""
    return bool(getattr(index, "frozen", False))


def check_index(index) -> InvariantReport:
    """Verify every dual-structure invariant of a live index.

    Read-only and side-effect free (content reads bypass the I/O trace by
    going straight to the disks' block store), so it can run between any
    two batches — or after a recovery — without perturbing the experiment.
    """
    report = InvariantReport()
    _check_structure_exclusivity(index, report)
    _check_buckets(index, report)
    _check_chunk_geometry(index, report)
    _check_allocation_partition(index, report)
    _check_contents(index, report)
    _check_posting_totals(index, report)
    _check_stats(index, report)
    return report
