"""Document-partitioned sharding: N independent dual-structure volumes.

:class:`ShardedTextIndex` implements the :class:`~repro.core.shard.IndexShard`
protocol over a vector of :class:`~repro.textindex.TextDocumentIndex`
volumes.  Global doc ids are assigned sequentially by the sharded index
and routed to a shard by the stable hash in
:func:`~repro.core.shard.shard_of`; each shard therefore receives an
*increasing subsequence* of the global ids, which keeps every per-shard
posting list sorted by global doc id and pairwise disjoint across shards
— the property :mod:`repro.query.scatter` exploits to gather exact
answers.

Update scaling comes from per-shard flushes: a batch touches only the
shards that received documents (empty shards are skipped and their batch
counters stand still, which is why the published identity of a sharded
snapshot is the per-shard *vector* of batch counters, not one number).
Flushes run serially by default, or in parallel behind the ``flush_jobs``
knob — thread-parallel in-process, or process-parallel via a checkpoint
round-trip per shard (the :mod:`repro.pipeline.sweep` executor pattern).

Everything the serving layer leans on composes per shard:

* **delta journals** aggregate into a :class:`ShardDeltaVector` whose
  ``clear()`` spans all shards, so copy-on-write publication stays
  per-shard incremental;
* **recovery** rolls back and replays only the shards whose flush
  aborted — completed sibling results are retained in an in-flight table
  so the batch as a whole is restartable without redoing finished work;
* **invariant checks** run per volume and merge into one report with
  shard-prefixed violations.

This module is deliberately *not* exported from ``repro.core``'s package
namespace: it imports the text facade (which imports ``repro.core``), so
it must only be imported from layers above the core.
"""

from __future__ import annotations

import io
from typing import Sequence

from ..query import boolean as boolean_query
from ..query import scatter
from ..query import streaming as streaming_query
from ..query import vector as vector_query
from ..query.vector import ScoredDocument
from ..textindex import QueryAnswer, TextDocumentIndex
from .checkpoint import CheckpointError
from .deletion import SweepStats
from .index import BatchResult, IndexConfig
from .invariants import InvariantReport, Violation
from .rebalance import RebuildScheduler
from .routing import RoutingTable


class ShardDeltaVector:
    """Aggregate view over per-shard delta journals.

    The serving layer treats the writer's ``delta`` as one object: it
    passes it to ``clone_incremental``, asks whether deletions changed,
    and clears it after a publish.  For a sharded writer each of those is
    a fan-out over the per-shard :class:`~repro.core.delta.DeltaJournal`s
    — which stay individually attached to their volumes, so flushes keep
    recording into them between publishes.
    """

    __slots__ = ("journals",)

    def __init__(self, journals: Sequence) -> None:
        self.journals = list(journals)

    @property
    def deletions_changed(self) -> bool:
        return any(j.deletions_changed for j in self.journals)

    @property
    def structure_changed(self) -> bool:
        return any(j.structure_changed for j in self.journals)

    @property
    def requires_full(self) -> bool:
        return any(j.requires_full for j in self.journals)

    @property
    def batches(self) -> int:
        return sum(j.batches for j in self.journals)

    def clear(self) -> None:
        for journal in self.journals:
            journal.clear()


def _flush_shard_worker(
    blob: bytes, batch: tuple, next_doc_id: int
) -> tuple[bytes, BatchResult, tuple | None]:
    """Process-pool worker: flush one shard's batch in a child process.

    The shard travels as its serialized checkpoint plus the in-memory
    batch snapshot (checkpoints only exist at batch boundaries, so the
    batch rides alongside).  Returns the post-flush checkpoint, the
    flush result, and the journal state the flush recorded so the parent
    can graft it onto its own journal.
    """
    shard = TextDocumentIndex.load(io.BytesIO(blob))
    shard.index.memory.restore(batch)
    shard.index._next_doc_id = next_doc_id
    result = shard.index.flush_batch()
    out = io.BytesIO()
    shard.save(out)
    journal = shard.index.delta
    journal_state = None
    if journal is not None:
        journal_state = (
            set(journal.dirty_words),
            set(journal.dirty_buckets),
            set(journal.dirty_blocks),
            journal.structure_changed,
            journal.batches,
        )
    return out.getvalue(), result, journal_state


class ShardedTextIndex:
    """A document-hash-sharded text index (implements ``IndexShard``).

    ``shards`` volumes are created from one :class:`IndexConfig`;
    ``router_seed`` perturbs the doc-id hash (any seed yields a valid
    partition — the differential tests sweep it).  ``flush_jobs`` > 1
    flushes pending shards in parallel using the ``flush_executor``
    (``"thread"`` or ``"process"``); results are identical to the serial
    order because shards share no mutable state.
    """

    def __init__(
        self,
        config: IndexConfig | None = None,
        tokenizer_config=None,
        region_rules=None,
        *,
        shards: int = 2,
        router_seed: int = 0,
        flush_jobs: int = 1,
        flush_executor: str = "thread",
        rebuild_stagger: bool = False,
    ) -> None:
        if shards < 2:
            raise ValueError(
                "ShardedTextIndex needs shards >= 2; use "
                "TextDocumentIndex (or build_text_index) for one volume"
            )
        if flush_executor not in ("thread", "process"):
            raise ValueError("flush_executor must be 'thread' or 'process'")
        self.shards = [
            TextDocumentIndex(
                config,
                tokenizer_config=tokenizer_config,
                region_rules=region_rules,
            )
            for _ in range(shards)
        ]
        self.router_seed = router_seed
        # Epoch 0: identity slot map, routing exactly like shard_of.
        self.routing = RoutingTable.initial(shards, router_seed)
        self.flush_jobs = flush_jobs
        self.flush_executor = flush_executor
        # Serialize grow_buckets rebuilds across shards: at most one
        # shard pays the rehash + full-clone publish per flush round.
        self.rebuild_scheduler = (
            RebuildScheduler() if rebuild_stagger else None
        )
        self._next_doc_id = 0
        self._batches = 0
        # *User* deletions over the global universe.  Per-shard deleted
        # sets additionally hold rebalance tombstones (documents a split
        # moved off a volume), which must hide a shard's stale copy but
        # must NOT hide the document from NOT-complement answers — so
        # global answer filtering uses this set, never the shard union.
        self._deleted: set[int] = set()
        # Doc ids skipped by explicit-id ingest (skewed placement):
        # they exist on no shard, so rebalance doc counts must not
        # treat them as live documents.
        self._holes: set[int] = set()
        # Completed per-shard results of the batch currently being
        # flushed: survives a sibling shard's crash so recovery resumes
        # instead of redoing finished shards.
        self._inflight: dict[int, BatchResult] = {}
        self._last_read_ops = 0

    # -- identity ---------------------------------------------------------

    @property
    def nshards(self) -> int:
        return len(self.shards)

    @property
    def ndocs(self) -> int:
        """Size of the *global* doc-id universe (spans all shards)."""
        return self._next_doc_id

    @property
    def batches(self) -> int:
        """Completed *global* batch flushes (each may touch few shards)."""
        return self._batches

    @property
    def shard_versions(self) -> tuple[int, ...]:
        return tuple(shard.batches for shard in self.shards)

    @property
    def crash_safe(self) -> bool:
        return self.shards[0].crash_safe

    @property
    def delta(self):
        journals = [shard.delta for shard in self.shards]
        if any(journal is None for journal in journals):
            return None
        return ShardDeltaVector(journals)

    @property
    def needs_recovery(self) -> bool:
        return any(shard.needs_recovery for shard in self.shards)

    @property
    def routing_epoch(self) -> int:
        """The routing table's epoch (0 until the first rebalance)."""
        return self.routing.epoch

    def route(self, doc_id: int) -> int:
        """The shard index owning ``doc_id`` under the current epoch."""
        return self.routing.route(doc_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedTextIndex(shards={len(self.shards)}, "
            f"ndocs={self._next_doc_id}, versions={self.shard_versions})"
        )

    # -- ingest -----------------------------------------------------------

    def add_document(self, text: str, doc_id: int | None = None) -> int:
        """Assign (or accept) a global doc id and index the document on
        the shard the router owns it to."""
        if doc_id is None:
            doc_id = self._next_doc_id
        elif doc_id < self._next_doc_id:
            raise ValueError(
                f"doc id {doc_id} below next id {self._next_doc_id}: "
                "ids must be non-decreasing"
            )
        if doc_id > self._next_doc_id:
            self._holes.update(range(self._next_doc_id, doc_id))
        self.shards[self.route(doc_id)].add_document(text, doc_id=doc_id)
        self._next_doc_id = doc_id + 1
        return doc_id

    def delete_document(self, doc_id: int) -> None:
        """Route the deletion to the shard that indexed the document."""
        if not 0 <= doc_id < self._next_doc_id:
            raise ValueError(
                f"doc id {doc_id} outside [0, {self._next_doc_id})"
            )
        self.shards[self.route(doc_id)].delete_document(doc_id)
        self._deleted.add(doc_id)

    def sweep_deletions(
        self, max_lists: int | None = None
    ) -> list[SweepStats]:
        """Run the reclamation sweep on every shard (``max_lists`` is a
        per-shard budget); returns the per-shard stats.

        Ids a shard's sweep physically reclaimed leave the global
        user-deletion set too, matching the single-volume contract
        (paper §3: after a sweep the deleted list can be thrown away).
        """
        before = [set(shard.deletions.deleted) for shard in self.shards]
        stats = [shard.sweep_deletions(max_lists) for shard in self.shards]
        for prior, shard in zip(before, self.shards):
            self._deleted -= prior - shard.deletions.deleted
        return stats

    # -- flushing ---------------------------------------------------------

    def flush_batch(self) -> BatchResult:
        """Flush every shard's pending batch as one global batch.

        Shards that received no documents are skipped outright — their
        batch counters (and hence their component of
        :attr:`shard_versions`) do not advance, and a copy-on-write
        publish shares their entire volume.  With ``flush_jobs > 1`` the
        pending shards flush in parallel; a crash in one shard leaves
        completed sibling results in the in-flight table, so calling
        :meth:`recover` resumes the same global batch.
        """
        pending = [
            i
            for i, shard in enumerate(self.shards)
            if i not in self._inflight and len(shard.index.memory)
        ]
        suppressed = self._stagger_rebuilds()
        try:
            if self.flush_jobs > 1 and len(pending) > 1:
                if self.flush_executor == "process":
                    self._flush_process(pending)
                else:
                    self._flush_thread(pending)
            else:
                for i in pending:
                    self._inflight[i] = self.shards[i].flush_batch()
        finally:
            for i, grower in suppressed:
                self.shards[i].index.grower = grower
        results = self._inflight
        self._inflight = {}
        self._batches += 1
        return self._aggregate(results.values())

    def _stagger_rebuilds(self) -> list[tuple]:
        """Ask the rebuild scheduler which shards may grow this round.

        Occupancy only changes at a flush, so the trigger state observed
        here equals the state at the previous flush boundary — the same
        decision input a replicated gateway reads from its workers' last
        flush outcomes, which keeps the two growth schedules identical.
        Every shard *not* granted this round has its grower detached for
        the duration (restored afterwards) — including shards below the
        threshold right now, whose incoming batch could push them over
        mid-flush and grow around the scheduler.  A deferred or newly
        triggered shard re-announces itself every round until granted,
        so no growth is lost, only delayed.
        """
        if self.rebuild_scheduler is None:
            return []
        wants = [
            i
            for i, shard in enumerate(self.shards)
            if shard.index.grower is not None
            and shard.index.grower.should_grow(shard.index.buckets)
        ]
        granted = self.rebuild_scheduler.grant(wants)
        suppressed = []
        for i, shard in enumerate(self.shards):
            if i not in granted and shard.index.grower is not None:
                suppressed.append((i, shard.index.grower))
                shard.index.grower = None
        return suppressed

    def _aggregate(self, results) -> BatchResult:
        """Sum per-shard flush results into one global batch result.

        ``nwords`` sums *per-shard* distinct words (a word split across
        shards counts once per shard it touched — each shard really did
        update a list for it); I/O counters are straight sums.
        """
        results = list(results)
        return BatchResult(
            batch=self._batches,
            nwords=sum(r.nwords for r in results),
            npostings=sum(r.npostings for r in results),
            new_words=sum(r.new_words for r in results),
            bucket_words=sum(r.bucket_words for r in results),
            long_words=sum(r.long_words for r in results),
            migrations=sum(r.migrations for r in results),
            io_ops=sum(r.io_ops for r in results),
            in_place_updates=sum(r.in_place_updates for r in results),
        )

    def _flush_thread(self, pending: list[int]) -> None:
        from concurrent.futures import ThreadPoolExecutor

        workers = min(self.flush_jobs, len(pending))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = {
                i: pool.submit(self.shards[i].flush_batch) for i in pending
            }
            errors = []
            for i, future in futures.items():
                try:
                    self._inflight[i] = future.result()
                except Exception as exc:
                    # The shard rolled its own state back (crash-safe) or
                    # raised cleanly; siblings keep their results.
                    errors.append(exc)
            if errors:
                raise errors[0]

    def _check_process_mode(self) -> None:
        """Process-parallel flush round-trips each shard through its
        checkpoint form, which deliberately does not serialize testing
        and growth knobs — refuse configs the round-trip would drop."""
        config = self.shards[0].index.config
        problems = []
        if config.crash_safe:
            problems.append("crash_safe=True")
        if config.fault_plan is not None:
            problems.append("fault_plan")
        if config.grow_buckets:
            problems.append("grow_buckets=True")
        if config.bucket_unit_bytes != 4:
            problems.append(f"bucket_unit_bytes={config.bucket_unit_bytes}")
        if problems:
            raise ValueError(
                "process-parallel flush cannot preserve "
                + ", ".join(problems)
                + " across the checkpoint round-trip; use "
                "flush_executor='thread' or flush_jobs=1"
            )

    def _flush_process(self, pending: list[int]) -> None:
        self._check_process_mode()
        payloads = []
        for i in pending:
            core = self.shards[i].index
            batch = core.memory.snapshot()
            next_doc_id = core._next_doc_id
            core.memory.clear()
            try:
                buf = io.BytesIO()
                self.shards[i].save(buf)
            finally:
                # The parent keeps the batch: still searchable, and still
                # flushable serially if a worker (or the pool) fails.
                core.memory.restore(batch)
            payloads.append((i, buf.getvalue(), batch, next_doc_id))
        try:
            from concurrent.futures import ProcessPoolExecutor

            pool = ProcessPoolExecutor(
                max_workers=min(self.flush_jobs, len(pending))
            )
        except (ImportError, OSError):
            # No process pool on this platform: flush serially instead.
            for i in pending:
                self._inflight[i] = self.shards[i].flush_batch()
            return
        with pool:
            futures = {
                i: pool.submit(_flush_shard_worker, blob, batch, next_id)
                for i, blob, batch, next_id in payloads
            }
            for i, future in futures.items():
                blob, result, journal_state = future.result()
                self._adopt_flushed(i, blob, journal_state)
                self._inflight[i] = result

    def _adopt_flushed(
        self, i: int, blob: bytes, journal_state: tuple | None
    ) -> None:
        """Replace shard ``i`` with the worker's post-flush checkpoint.

        The reconstructed volume gets a fresh journal; graft the parent's
        unpublished dirty state plus the worker's batch onto it, and mark
        it recovered — structure identity was not preserved across the
        round-trip, so the next copy-on-write publish of this shard falls
        back to a full clone (its dirty-block set stays valid for buffer
        cache carry-over).
        """
        old = self.shards[i]
        new = TextDocumentIndex.load(io.BytesIO(blob))
        new.tokenizer_config = old.tokenizer_config
        new.region_rules = old.region_rules
        new.deletions.deleted = set(old.deletions.deleted)
        journal, old_journal = new.index.delta, old.index.delta
        if journal is not None and old_journal is not None:
            words, buckets, blocks, structure, batches = journal_state or (
                set(), set(), set(), False, 0
            )
            journal.dirty_words.update(old_journal.dirty_words, words)
            journal.dirty_buckets.update(old_journal.dirty_buckets, buckets)
            journal.dirty_blocks.update(old_journal.dirty_blocks, blocks)
            journal.deletions_changed = old_journal.deletions_changed
            journal.structure_changed = (
                old_journal.structure_changed or structure
            )
            journal.batches = old_journal.batches + batches
            journal.note_recovery()
        self.shards[i] = new

    # -- recovery ---------------------------------------------------------

    def recover(self, replay: bool = True) -> BatchResult | None:
        """Recover only the shards whose flush aborted; siblings are
        untouched.  With ``replay``, finishes the interrupted global
        batch: replays each aborted shard, then flushes any shards whose
        batches never started, and returns the aggregate result."""
        if not self.crash_safe:
            raise RuntimeError(
                "recover() requires IndexConfig(crash_safe=True)"
            )
        for i, shard in enumerate(self.shards):
            if shard.needs_recovery:
                result = shard.recover(replay=replay)
                if replay and result is not None:
                    self._inflight[i] = result
        if not replay:
            self._inflight = {}
            return None
        pending = any(len(s.index.memory) for s in self.shards)
        if not self._inflight and not pending:
            return None
        return self.flush_batch()

    # -- rebalancing ------------------------------------------------------

    def shard_doc_counts(self) -> list[int]:
        """Live documents per shard under the current routing epoch.

        An O(ndocs) lazy scan over the global universe (the index keeps
        no per-shard doc list); the rebalance planner samples this at
        flush boundaries, where the cost is amortized against the flush
        itself.
        """
        counts = [0] * len(self.shards)
        for doc_id in range(self._next_doc_id):
            if doc_id in self._deleted or doc_id in self._holes:
                continue
            counts[self.routing.route(doc_id)] += 1
        return counts

    def split_shard(self, victim: int) -> int:
        """Split ``victim``'s hash slice onto a brand-new shard.

        The new volume is spawned as a *clone* of the victim (the same
        move a replica rebuild makes from a checkpoint), after which
        each copy tombstones the half it no longer owns: the victim
        deletes the movers, the clone deletes the stayers.  Routing
        tombstones go through the ordinary deletion filter — they hide a
        volume's stale copy from its answers — but never enter the
        global user-deletion set, so the documents stay globally alive.
        Publishes the next routing epoch and returns the new shard id.
        """
        if not 0 <= victim < len(self.shards):
            raise ValueError(f"no shard {victim}")
        new_id = len(self.shards)
        table = self.routing.split(victim, new_id)
        vol = self.shards[victim]
        if len(vol.index.memory):
            # Clones exist at batch boundaries only.
            vol.flush_batch()
        clone = vol.clone()
        self.shards.append(clone)
        for doc_id in range(vol.ndocs):
            if self.routing.route(doc_id) != victim:
                continue  # never lived on this volume
            if table.route(doc_id) == new_id:
                vol.delete_document(doc_id)  # mover: stale on the victim
            else:
                clone.delete_document(doc_id)  # stayer: stale on the clone
        self.routing = table
        return new_id

    def merge_shards(self, src: int, dst: int) -> None:
        """Merge ``src``'s slice into ``dst``, retiring ``src``.

        Per-volume posting lists require ascending doc-id inserts, so
        the union cannot be built by appending ``src``'s documents onto
        ``dst``.  Instead both volumes :meth:`export
        <repro.textindex.TextDocumentIndex.export_documents>` their live
        documents and a fresh union volume re-indexes the interleaved
        stream in global doc-id order.  ``dst``'s slot takes the union;
        ``src``'s slot is left as an empty volume owning no routing
        slots (shard ids are stable indices)."""
        table = self.routing.merge(src, dst)
        src_vol, dst_vol = self.shards[src], self.shards[dst]
        for vol in (src_vol, dst_vol):
            if len(vol.index.memory):
                vol.flush_batch()
        union = TextDocumentIndex(
            dst_vol.index.config,
            tokenizer_config=dst_vol.tokenizer_config,
            region_rules=dst_vol.region_rules,
        )
        for doc_id, text in sorted(
            src_vol.export_documents() + dst_vol.export_documents()
        ):
            union.add_document(text, doc_id=doc_id)
        # Exports omit postings-free documents; restore the doc-id
        # watermark so later deletions of such ids stay valid.
        union.index._next_doc_id = max(src_vol.ndocs, dst_vol.ndocs)
        if len(union.index.memory):
            union.flush_batch()
        self.shards[dst] = union
        self.shards[src] = TextDocumentIndex(
            src_vol.index.config,
            tokenizer_config=src_vol.tokenizer_config,
            region_rules=src_vol.region_rules,
        )
        self.routing = table

    # -- publication ------------------------------------------------------

    def _empty_copy(self) -> "ShardedTextIndex":
        copy = ShardedTextIndex.__new__(ShardedTextIndex)
        copy.router_seed = self.router_seed
        # Routing tables are immutable: the clone shares this epoch's
        # table and parts ways at the writer's next rebalance.
        copy.routing = self.routing
        # Clones are published read-only snapshots: serial flush knobs.
        copy.flush_jobs = 1
        copy.flush_executor = "thread"
        copy.rebuild_scheduler = None
        copy._next_doc_id = self._next_doc_id
        copy._batches = self._batches
        copy._deleted = set(self._deleted)
        copy._holes = set(self._holes)
        copy._inflight = {}
        copy._last_read_ops = 0
        return copy

    def clone(self) -> "ShardedTextIndex":
        """An independent deep copy at the current batch boundary."""
        copy = self._empty_copy()
        copy.shards = [shard.clone() for shard in self.shards]
        return copy

    def clone_incremental(self, prev, delta) -> "ShardedTextIndex":
        """Per-shard copy-on-write against ``prev``'s shard vector.

        Shards whose journal cannot prove coverage (crash recovery, a
        structural rebuild, a process-mode flush) fall back to a full
        clone *individually* — one bad shard never forces siblings to
        give up sharing, and unlike the single-volume method this one
        only raises when the shard layouts are incompatible.
        """
        if (
            not isinstance(prev, ShardedTextIndex)
            or len(prev.shards) != len(self.shards)
            or prev.router_seed != self.router_seed
            or prev.routing != self.routing
        ):
            # A routing-epoch change means documents moved between
            # shards: per-shard deltas no longer describe the gap, so
            # the caller must publish a full clone.
            raise CheckpointError(
                "previous snapshot has a different shard layout"
            )
        journals = (
            delta.journals
            if delta is not None
            else [None] * len(self.shards)
        )
        copy = self._empty_copy()
        copy.shards = []
        for shard, prev_shard, journal in zip(
            self.shards, prev.shards, journals
        ):
            if journal is None:
                copy.shards.append(shard.clone())
                continue
            try:
                copy.shards.append(
                    shard.clone_incremental(prev_shard, journal)
                )
            except CheckpointError:
                copy.shards.append(shard.clone())
        return copy

    def dirty_terms(self) -> frozenset:
        terms: set[str] = set()
        for shard in self.shards:
            terms |= shard.dirty_terms()
        return frozenset(terms)

    def freeze(self) -> None:
        for shard in self.shards:
            shard.freeze()

    def check(self) -> InvariantReport:
        """Run the invariant checker on every volume; merge the reports
        with shard-prefixed violation details."""
        report = InvariantReport()
        for i, shard in enumerate(self.shards):
            sub = shard.check()
            report.checks += sub.checks
            for violation in sub.violations:
                report.violations.append(
                    Violation(violation.code, f"shard {i}: {violation.detail}")
                )
        return report

    def attach_buffer_cache(
        self, blocks: int, counters, prev=None, delta=None
    ) -> None:
        """Split the block budget evenly across shards; each shard
        carries its own cache forward from its counterpart in ``prev``
        minus its own journal's dirty blocks.  All shard caches share
        ``counters``, so hit-rate accounting stays global."""
        per_shard = max(1, blocks // len(self.shards))
        prev_shards = (
            prev.shards if prev is not None else [None] * len(self.shards)
        )
        journals = (
            delta.journals
            if delta is not None
            else [None] * len(self.shards)
        )
        for shard, prev_shard, journal in zip(
            self.shards, prev_shards, journals
        ):
            shard.attach_buffer_cache(
                per_shard, counters, prev=prev_shard, delta=journal
            )

    # -- retrieval (scatter-gather) ---------------------------------------

    def fetch_postings(self, word: str) -> tuple[list[int], int]:
        """One word's live doc ids merged across all shards, plus the
        summed read ops.  Identical to what a single volume holding the
        whole collection would return."""
        fetch, counter = scatter.scatter_fetch(
            [shard.fetch_postings for shard in self.shards]
        )
        return fetch(word), counter[0]

    def search_boolean(self, query: str) -> QueryAnswer:
        """Fetch-level scatter: merge each term's posting fragments and
        run the unchanged boolean evaluator over the *global* universe —
        which is what keeps ``NOT``'s complement correct (a per-shard
        complement would admit other shards' documents)."""
        fetch, counter = scatter.scatter_fetch(
            [shard.fetch_postings for shard in self.shards]
        )
        docs = boolean_query.evaluate(query, fetch, self.ndocs)
        # Per-shard fetches are deletion-filtered, but NOT's complement
        # still contains deleted ids (paper §3: filter every answer).
        # Filter with the *user* deletion set, not the per-shard union —
        # after a split the union also holds rebalance tombstones for
        # documents that moved shards but are globally alive.
        dead = self._deleted
        docs = [d for d in docs if d not in dead] if dead else list(docs)
        self._last_read_ops = counter[0]
        return QueryAnswer(doc_ids=docs, read_ops=counter[0])

    def search_streamed(self, query: str) -> QueryAnswer:
        """Answer-level scatter: flat AND/OR is decided by a document's
        own contents, so each shard streams its slice lazily (keeping the
        early-exit economy local) and the disjoint answers merge."""
        streaming_query.parse_flat(query)  # uniform rejection up front
        answers = [shard.search_streamed(query) for shard in self.shards]
        docs, read_ops = scatter.gather_answers(
            [(a.doc_ids, a.read_ops) for a in answers]
        )
        self._last_read_ops = read_ops
        return QueryAnswer(doc_ids=docs, read_ops=read_ops)

    def search_vector(
        self, weights: dict[str, float], top_k: int = 10
    ) -> list[ScoredDocument]:
        ranked, _ = self.search_vector_counted(weights, top_k=top_k)
        return ranked

    def search_vector_counted(
        self, weights: dict[str, float], top_k: int = 10
    ) -> tuple[list[ScoredDocument], int]:
        """Fetch-level scatter under the unchanged ranker: idf uses the
        global ``ndocs``, so scores are bit-identical to one volume."""
        fetch, counter = scatter.scatter_fetch(
            [shard.fetch_postings for shard in self.shards]
        )
        ranked = vector_query.rank(
            weights, fetch, self.ndocs, top_k=top_k
        )
        self._last_read_ops = counter[0]
        return ranked, counter[0]

    @property
    def last_read_ops(self) -> int:
        return self._last_read_ops

    # -- introspection ----------------------------------------------------

    def document_frequency(self, word: str) -> int:
        return sum(shard.document_frequency(word) for shard in self.shards)

    def shard_stats(self) -> list:
        """Per-shard :class:`~repro.core.index.IndexStats`."""
        return [shard.stats() for shard in self.shards]


def build_text_index(
    config: IndexConfig | None = None,
    tokenizer_config=None,
    region_rules=None,
    *,
    shards: int = 1,
    router_seed: int = 0,
    flush_jobs: int = 1,
    flush_executor: str = "thread",
):
    """Build a single-volume or sharded text index behind one signature.

    ``shards <= 1`` returns a plain :class:`TextDocumentIndex` — the
    exact pre-sharding code path, so defaults change nothing.
    """
    if shards <= 1:
        return TextDocumentIndex(
            config,
            tokenizer_config=tokenizer_config,
            region_rules=region_rules,
        )
    return ShardedTextIndex(
        config,
        tokenizer_config=tokenizer_config,
        region_rules=region_rules,
        shards=shards,
        router_seed=router_seed,
        flush_jobs=flush_jobs,
        flush_executor=flush_executor,
    )
