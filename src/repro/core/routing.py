"""Versioned document routing: the epoch-stamped hash-slice → shard map.

The static router :func:`~repro.core.shard.shard_of` pins every document
to ``mix(doc_id) mod nshards`` forever, so document-hash skew permanently
unbalances flush and query load.  :class:`RoutingTable` generalizes it
into *slots*: documents hash into ``nslots`` slots with the same
splitmix64 mix, and an ``owners`` vector maps each slot to the shard that
currently owns it.  The degenerate epoch-0 table (``nslots == nshards``,
identity owners) reproduces ``shard_of`` routing *exactly*, so a stack
built on the table behaves frame-for-frame like the static router until
the first rebalance.

Two structural moves change the map (each bumps ``epoch``):

* **split(victim, new_shard)** — halve the victim's slot set and hand the
  upper half to a new shard.  When the victim owns a single slot the
  table first *refines*: ``nslots`` doubles and ``owners'[j] =
  owners[j % n]``.  Refinement is routing-preserving because the mix is
  computed once over the full 64-bit state and only reduced mod
  ``nslots``: for ``nslots' = 2n``, ``(mix mod 2n) mod n == mix mod n``,
  so every document stays on its shard and only the *granularity* of
  ownership changes.
* **merge(src, dst)** — reassign every slot of ``src`` to ``dst``,
  retiring ``src``.

The epoch is the routing half of the serving stack's version vector: a
cached answer or an incremental checkpoint stamped with epoch *e* is
invalid under any *e' != e* (documents moved; per-shard complements and
deltas no longer line up).
"""

from __future__ import annotations

from .shard import shard_of


class RoutingTable:
    """An immutable epoch-stamped slot → shard ownership map.

    Structural operations return *new* tables (epoch + 1); readers keep
    routing on the table they captured, which is what lets a rebalance
    cut over atomically by publishing the next table.
    """

    __slots__ = ("epoch", "seed", "nslots", "owners")

    def __init__(
        self, epoch: int, seed: int, nslots: int, owners: tuple[int, ...]
    ) -> None:
        if nslots < 1 or len(owners) != nslots:
            raise ValueError("owners must map every slot")
        self.epoch = epoch
        self.seed = seed
        self.nslots = nslots
        self.owners = owners

    # -- construction -----------------------------------------------------

    @classmethod
    def initial(cls, nshards: int, seed: int = 0) -> "RoutingTable":
        """The epoch-0 table: identity owners, one slot per shard.

        Routes exactly like ``shard_of(doc_id, nshards, seed)``,
        including the ``nshards <= 1`` degenerate case (one slot, owner
        0 — ``shard_of`` short-circuits to 0 there too).
        """
        n = max(1, nshards)
        return cls(0, seed, n, tuple(range(n)))

    # -- routing ----------------------------------------------------------

    def route(self, doc_id: int) -> int:
        """The shard owning ``doc_id`` under this epoch's map."""
        return self.owners[shard_of(doc_id, self.nslots, self.seed)]

    def slot_of(self, doc_id: int) -> int:
        """The slot (not shard) a document hashes into."""
        return shard_of(doc_id, self.nslots, self.seed)

    # -- introspection ----------------------------------------------------

    @property
    def shard_ids(self) -> tuple[int, ...]:
        """Shard ids owning at least one slot, ascending."""
        return tuple(sorted(set(self.owners)))

    @property
    def nshards(self) -> int:
        """Count of shards owning at least one slot."""
        return len(set(self.owners))

    def slots_of(self, shard_id: int) -> tuple[int, ...]:
        """Slots owned by ``shard_id``, ascending."""
        return tuple(
            j for j, owner in enumerate(self.owners) if owner == shard_id
        )

    def doc_share(self, shard_id: int) -> float:
        """Fraction of the hash space this shard owns (slots are
        equal-measure under the mix, so this is the expected doc share
        of an unskewed id stream)."""
        return len(self.slots_of(shard_id)) / self.nslots

    def layout(self) -> tuple:
        """The identity an incremental checkpoint must match: same
        seed, same slot count, same ownership vector."""
        return (self.seed, self.nslots, self.owners)

    def as_dict(self) -> dict:
        return {
            "epoch": self.epoch,
            "seed": self.seed,
            "nslots": self.nslots,
            "owners": list(self.owners),
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RoutingTable):
            return NotImplemented
        return (
            self.epoch == other.epoch
            and self.layout() == other.layout()
        )

    def __hash__(self) -> int:
        return hash((self.epoch, self.layout()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RoutingTable(epoch={self.epoch}, nslots={self.nslots}, "
            f"owners={self.owners})"
        )

    # -- structural moves -------------------------------------------------

    def refine(self) -> "RoutingTable":
        """Double the slot space without moving any document.

        ``(mix mod 2n) mod n == mix mod n``, so slot ``j`` of the new
        table routes the documents that hashed to slot ``j % n`` of the
        old one — assigning it the same owner preserves every route.
        Bumps the epoch (the *slice identity* changed even though no
        document moved) — callers that only refine as a step of a split
        use :meth:`_refined` to avoid double-bumping.
        """
        return RoutingTable(
            self.epoch + 1, self.seed, self.nslots * 2, self.owners * 2
        )

    def _refined(self) -> "RoutingTable":
        """Refinement step without an epoch bump (internal to split)."""
        return RoutingTable(
            self.epoch, self.seed, self.nslots * 2, self.owners * 2
        )

    def split(self, victim: int, new_shard_id: int) -> "RoutingTable":
        """Hand the upper half of ``victim``'s slots to ``new_shard_id``.

        Refines first if the victim owns a single slot, so a split is
        always possible.  The documents that move are exactly those
        whose slot lands in the reassigned half — the caller relocates
        them (checkpoint-spawn + tombstones) before publishing the
        returned table.
        """
        if new_shard_id in self.owners:
            raise ValueError(f"shard {new_shard_id} already owns slots")
        table = self
        slots = table.slots_of(victim)
        if not slots:
            raise ValueError(f"shard {victim} owns no slots")
        if len(slots) == 1:
            table = table._refined()
            slots = table.slots_of(victim)
        moved = slots[len(slots) // 2:]
        owners = list(table.owners)
        for j in moved:
            owners[j] = new_shard_id
        return RoutingTable(
            self.epoch + 1, table.seed, table.nslots, tuple(owners)
        )

    def merge(self, src: int, dst: int) -> "RoutingTable":
        """Reassign every slot of ``src`` to ``dst``, retiring ``src``."""
        if src == dst:
            raise ValueError("cannot merge a shard into itself")
        if not self.slots_of(src):
            raise ValueError(f"shard {src} owns no slots")
        if not self.slots_of(dst):
            raise ValueError(f"shard {dst} owns no slots")
        owners = tuple(
            dst if owner == src else owner for owner in self.owners
        )
        return RoutingTable(self.epoch + 1, self.seed, self.nslots, owners)

    def reassign(self, mapping: dict[int, int]) -> "RoutingTable":
        """Rewrite shard ids wholesale (``old id -> new id``) without
        changing which documents live together — used by callers that
        rebuild shard storage under new ids (e.g. a merge that builds a
        brand-new union shard)."""
        owners = tuple(mapping.get(owner, owner) for owner in self.owners)
        return RoutingTable(self.epoch + 1, self.seed, self.nslots, owners)
