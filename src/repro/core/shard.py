"""The ``IndexShard`` protocol: what serving needs from an index volume.

The service and query layers used to import the concrete
:class:`~repro.textindex.TextDocumentIndex` and reach into its internals
(``index.index.fetch``, ``index.vocabulary``, ``index.deletions``).  That
hard-wired the single-volume assumption into every layer above the core.
This module names the actual contract — ingest, flush, snapshot cloning,
recovery, self-checking, and thread-safe query evaluation — so that one
volume (:class:`~repro.textindex.TextDocumentIndex`) and a
document-partitioned collection of volumes
(:class:`~repro.core.sharded.ShardedTextIndex`) are interchangeable
behind it.

Thread-safety contract: the ``search_*`` methods must keep all read-op
accounting local to the call (no shared counters), because published
clones are queried from many reader threads at once.

The module also owns the document router: a *stable* doc-id hash (no
dependence on ``PYTHONHASHSEED`` or process identity) so that clones,
recovered writers, and worker processes all agree on which shard owns a
document.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..query.vector import ScoredDocument
    from ..textindex import QueryAnswer
    from .index import BatchResult
    from .invariants import InvariantReport


_MASK64 = (1 << 64) - 1


def shard_of(doc_id: int, nshards: int, seed: int = 0) -> int:
    """The shard owning ``doc_id`` under a stable splitmix64-style mix.

    Deterministic across processes and Python versions — the router is
    part of the on-disk contract (a clone must route deletions to the
    same shard that indexed the document).  With ``nshards == 1`` every
    document routes to shard 0 (the single-volume degenerate case).
    """
    if nshards <= 1:
        return 0
    z = (doc_id + 0x9E3779B97F4A7C15 * (seed + 1)) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) % nshards


@runtime_checkable
class IndexShard(Protocol):
    """One independently updatable, clonable, recoverable index volume.

    Implemented by :class:`~repro.textindex.TextDocumentIndex` (a single
    dual-structure volume) and by
    :class:`~repro.core.sharded.ShardedTextIndex` (a document-partitioned
    vector of such volumes).  The serving layer
    (:mod:`repro.service`) is written against this protocol only.
    """

    # -- identity ---------------------------------------------------------

    @property
    def ndocs(self) -> int:
        """Documents indexed so far (the global doc-id universe size)."""

    @property
    def batches(self) -> int:
        """Completed batch flushes."""

    @property
    def shard_versions(self) -> tuple[int, ...]:
        """Per-shard batch counters — the shard-snapshot vector.

        A published snapshot is identified by this vector; the result
        cache keys its entries on it.  A single volume reports a
        one-element vector.
        """

    @property
    def crash_safe(self) -> bool:
        """Whether aborted flushes can be rolled back and replayed."""

    @property
    def delta(self):
        """The delta journal(s) covering mutations since the last
        publish, or ``None`` when journaling is off.  For a sharded
        index this is an aggregate view over per-shard journals."""

    # -- ingest -----------------------------------------------------------

    def add_document(self, text: str, doc_id: int | None = None) -> int:
        """Tokenize and index one document; returns its doc id."""

    def delete_document(self, doc_id: int) -> None:
        """Hide a document from answers immediately (paper §3)."""

    def flush_batch(self) -> "BatchResult":
        """Apply the pending in-memory batch as one incremental update."""

    def recover(self, replay: bool = True) -> "BatchResult | None":
        """Roll back an aborted flush to the last batch boundary and —
        when ``replay`` — re-apply and re-flush the aborted batch."""

    # -- publication ------------------------------------------------------

    def clone(self) -> "IndexShard":
        """An independent deep copy at the current batch boundary."""

    def clone_incremental(self, prev: "IndexShard", delta) -> "IndexShard":
        """A copy structurally sharing everything ``delta`` left
        untouched with ``prev`` (raises
        :class:`~repro.core.checkpoint.CheckpointError` when coverage
        cannot be proven; sharded implementations may fall back
        per-shard instead of raising)."""

    def dirty_terms(self) -> frozenset:
        """Lowercased vocabulary terms touched since the last publish
        (drives delta-scoped result-cache invalidation)."""

    def freeze(self) -> None:
        """Debug write barrier: mark every underlying structure
        immutable so copy-on-write sharing violations fail loudly."""

    def check(self) -> "InvariantReport":
        """Run the dual-structure invariant checker over every volume."""

    def attach_buffer_cache(
        self, blocks: int, counters, prev=None, delta=None
    ) -> None:
        """Wire a decoded-chunk buffer cache into this (published) index,
        carrying ``prev``'s cache forward minus ``delta``'s dirty blocks
        when both are given."""

    # -- retrieval (thread-safe: per-call accounting) ---------------------

    def search_boolean(self, query: str) -> "QueryAnswer": ...

    def search_streamed(self, query: str) -> "QueryAnswer": ...

    def search_vector(
        self, weights: Mapping[str, float], top_k: int = 10
    ) -> "list[ScoredDocument]": ...

    def search_vector_counted(
        self, weights: Mapping[str, float], top_k: int = 10
    ) -> "tuple[list[ScoredDocument], int]": ...
