"""Core of the reproduction: the dual-structure index and its policies."""

from .buckets import Bucket, BucketManager, BucketSample, modular_hash
from .compression import (
    CODECS,
    bytes_per_posting,
    delta_decode,
    delta_encode,
    gamma_decode,
    gamma_encode,
    implied_block_postings,
)
from .deletion import DeletionManager, SweepStats
from .delta import DeltaJournal, FrozenStateError
from .directory import Directory, LongListEntry
from .flush import FlushCounters, FlushManager
from .index import (
    BatchResult,
    DualStructureIndex,
    IndexConfig,
    IndexStats,
    WordCategory,
)
from .invariants import (
    InvariantError,
    InvariantReport,
    Violation,
    check_index,
    freeze_index,
)
from .longlists import LongListCounters, LongListManager
from .memindex import InMemoryIndex
from .policy import Alloc, Limit, Policy, Style, figure8_policies
from .positional import PositionalPosting, PositionalPostings, Region
from .rebalance import BucketGrower, GrowthEvent, GrowthPolicy
from .shard import IndexShard, shard_of
from .postings import (
    CountPostings,
    DocPostings,
    PostingPayload,
    decode_doc_ids,
    decode_varint,
    empty_like,
    encode_doc_ids,
    encode_varint,
)

__all__ = [
    "Alloc",
    "CODECS",
    "BatchResult",
    "Bucket",
    "BucketManager",
    "BucketSample",
    "BucketGrower",
    "CountPostings",
    "DeletionManager",
    "DeltaJournal",
    "Directory",
    "DocPostings",
    "DualStructureIndex",
    "FrozenStateError",
    "FlushCounters",
    "FlushManager",
    "IndexConfig",
    "IndexShard",
    "IndexStats",
    "GrowthEvent",
    "GrowthPolicy",
    "InMemoryIndex",
    "InvariantError",
    "InvariantReport",
    "Limit",
    "LongListCounters",
    "LongListEntry",
    "LongListManager",
    "Policy",
    "PositionalPosting",
    "PositionalPostings",
    "PostingPayload",
    "Region",
    "Style",
    "SweepStats",
    "Violation",
    "WordCategory",
    "bytes_per_posting",
    "check_index",
    "decode_doc_ids",
    "delta_decode",
    "delta_encode",
    "gamma_decode",
    "gamma_encode",
    "implied_block_postings",
    "decode_varint",
    "empty_like",
    "encode_doc_ids",
    "encode_varint",
    "figure8_policies",
    "freeze_index",
    "modular_hash",
    "shard_of",
]
