"""Posting-list compression codecs (related work: Zobel, Moffat &
Sacks-Davis).

The paper's evaluation folds compression into two knobs — ``BlockPosting``
"implicitly models the efficiency of the compression algorithm applied to
long lists" — and its related-work section points at Zobel et al.'s
compression methods as complementary.  This module supplies the classic
gap-compression family those methods build on, so the implicit knob can be
grounded in measured bytes per posting:

* **varint** (LEB128 on gaps) — the codec the content-mode disks use;
* **Elias gamma** — unary length prefix + binary remainder; excellent for
  the tiny gaps of frequent words' lists;
* **Elias delta** — gamma-coded length + binary remainder; better for the
  larger gaps of rare words' lists.

All codecs operate on strictly increasing doc-id sequences via their gap
transform (``gap = id - prev - 1``), and all are exact inverses (property
tested).  :func:`implied_block_postings` converts a measured bytes/posting
rate into the ``BlockPosting`` value it implies for a given block size —
connecting the measurement back to the paper's parameter.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .postings import decode_doc_ids, encode_doc_ids


class BitWriter:
    """Append bits MSB-first into a growing byte buffer."""

    def __init__(self) -> None:
        self._out = bytearray()
        self._bit = 0  # bits used in the trailing byte

    def write_bit(self, bit: int) -> None:
        if self._bit == 0:
            self._out.append(0)
        if bit:
            self._out[-1] |= 1 << (7 - self._bit)
        self._bit = (self._bit + 1) % 8

    def write_bits(self, value: int, nbits: int) -> None:
        for shift in range(nbits - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    def write_unary(self, n: int) -> None:
        """``n`` zeros followed by a one."""
        for _ in range(n):
            self.write_bit(0)
        self.write_bit(1)

    def getvalue(self) -> bytes:
        return bytes(self._out)


class BitReader:
    """Read bits MSB-first from a byte buffer."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0  # absolute bit position

    @property
    def remaining_bits(self) -> int:
        return len(self._data) * 8 - self._pos

    def read_bit(self) -> int:
        if self._pos >= len(self._data) * 8:
            raise ValueError("bit stream exhausted")
        byte = self._data[self._pos // 8]
        bit = (byte >> (7 - self._pos % 8)) & 1
        self._pos += 1
        return bit

    def read_bits(self, nbits: int) -> int:
        value = 0
        for _ in range(nbits):
            value = (value << 1) | self.read_bit()
        return value

    def read_unary(self) -> int:
        n = 0
        while self.read_bit() == 0:
            n += 1
        return n


# -- Elias gamma / delta over positive integers ----------------------------------


def _gamma_write(writer: BitWriter, value: int) -> None:
    """Gamma-code a positive integer: unary(len-1) + low bits."""
    if value <= 0:
        raise ValueError("gamma codes positive integers only")
    nbits = value.bit_length()
    writer.write_unary(nbits - 1)
    writer.write_bits(value - (1 << (nbits - 1)), nbits - 1)


def _gamma_read(reader: BitReader) -> int:
    nbits = reader.read_unary() + 1
    return (1 << (nbits - 1)) | reader.read_bits(nbits - 1)


def _delta_write(writer: BitWriter, value: int) -> None:
    """Delta-code a positive integer: gamma(len) + low bits."""
    if value <= 0:
        raise ValueError("delta codes positive integers only")
    nbits = value.bit_length()
    _gamma_write(writer, nbits)
    writer.write_bits(value - (1 << (nbits - 1)), nbits - 1)


def _delta_read(reader: BitReader) -> int:
    nbits = _gamma_read(reader)
    return (1 << (nbits - 1)) | reader.read_bits(nbits - 1)


def _encode_gaps(doc_ids: Sequence[int], write) -> bytes:
    writer = BitWriter()
    prev = -1
    for doc in doc_ids:
        if doc <= prev:
            raise ValueError(
                f"doc ids must be strictly increasing; {doc} after {prev}"
            )
        write(writer, doc - prev)  # gaps >= 1: gamma/delta-friendly
        prev = doc
    return writer.getvalue()


def _decode_gaps(data: bytes, count: int, read) -> list[int]:
    reader = BitReader(data)
    out: list[int] = []
    prev = -1
    for _ in range(count):
        prev = prev + read(reader)
        out.append(prev)
    return out


def gamma_encode(doc_ids: Sequence[int]) -> bytes:
    """Elias-gamma gap encoding of a strictly increasing sequence."""
    return _encode_gaps(doc_ids, _gamma_write)


def gamma_decode(data: bytes, count: int) -> list[int]:
    """Decode ``count`` doc ids from a gamma stream."""
    return _decode_gaps(data, count, _gamma_read)


def delta_encode(doc_ids: Sequence[int]) -> bytes:
    """Elias-delta gap encoding of a strictly increasing sequence."""
    return _encode_gaps(doc_ids, _delta_write)


def delta_decode(data: bytes, count: int) -> list[int]:
    """Decode ``count`` doc ids from a delta stream."""
    return _decode_gaps(data, count, _delta_read)


CODECS = {
    "varint": (
        lambda ids: encode_doc_ids(ids),
        lambda data, count: decode_doc_ids(data),
    ),
    "gamma": (gamma_encode, gamma_decode),
    "delta": (delta_encode, delta_decode),
}


def bytes_per_posting(codec: str, doc_ids: Sequence[int]) -> float:
    """Measured compression rate of one list under a codec."""
    if not doc_ids:
        return 0.0
    encode, _ = CODECS[codec]
    return len(encode(doc_ids)) / len(doc_ids)


def implied_block_postings(
    bytes_per_posting_rate: float, block_size: int
) -> int:
    """The ``BlockPosting`` value a compression rate implies.

    The paper's Table-4 knob made concrete: a 4 KB block holds
    ``block_size / rate`` postings at the measured rate.
    """
    if bytes_per_posting_rate <= 0 or block_size <= 0:
        raise ValueError("rate and block_size must be > 0")
    return max(1, int(block_size / bytes_per_posting_rate))
