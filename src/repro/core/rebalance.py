"""Dynamic bucket-space growth (paper §7's open problem).

"We also need to study how to dynamically grow the bucket space since,
unfortunately, as the size of the index grows from the addition of more
documents, the performance of the index degrades.  This implies that we
need a strategy to rebalance the division between short and long lists for
any number of incremental updates — i.e., periodically, as the buckets are
read, they can be expanded and written in a larger region of disk."

:class:`BucketGrower` implements the strategy the paper sketches:

* a **trigger**: when bucket occupancy at a flush exceeds a threshold, the
  bucket space has stopped absorbing the infrequent-word mass and eviction
  pressure is pushing moderately-rare words into long lists prematurely;
* an **action**: double the number of buckets and re-hash every short list
  into the enlarged space (the modular hash adapts automatically).  Since
  the buckets are all in memory during an update and are rewritten to a
  fresh disk region at every flush anyway (shadow flushes), growth costs
  one larger flush — exactly the "expanded and written in a larger region
  of disk" the paper anticipates.

Growth never demotes existing long lists — the division rebalances going
forward, which is the paper's stated goal.
"""

from __future__ import annotations

from dataclasses import dataclass

from .buckets import BucketManager, modular_hash


@dataclass
class GrowthEvent:
    """Record of one bucket-space expansion."""

    batch: int
    old_nbuckets: int
    new_nbuckets: int
    occupancy_before: float


@dataclass
class GrowthPolicy:
    """When and how to expand the bucket space."""

    #: Grow when occupancy at a flush exceeds this fraction.
    occupancy_threshold: float = 0.85
    #: Multiply the bucket count by this factor per growth step.
    factor: int = 2
    #: Hard ceiling on the bucket count (0 = unlimited).
    max_buckets: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.occupancy_threshold < 1.0:
            raise ValueError("occupancy_threshold must be in (0, 1)")
        if self.factor < 2:
            raise ValueError("factor must be >= 2")
        if self.max_buckets < 0:
            raise ValueError("max_buckets must be >= 0")


class BucketGrower:
    """Applies a :class:`GrowthPolicy` to a :class:`BucketManager`."""

    def __init__(self, policy: GrowthPolicy | None = None) -> None:
        self.policy = policy or GrowthPolicy()
        self.events: list[GrowthEvent] = []

    def should_grow(self, manager: BucketManager) -> bool:
        occupancy = manager.occupancy()
        if occupancy <= self.policy.occupancy_threshold:
            return False
        if (
            self.policy.max_buckets
            and manager.nbuckets * self.policy.factor > self.policy.max_buckets
        ):
            return False
        return True

    def grow(self, manager: BucketManager, batch: int = -1) -> GrowthEvent:
        """Expand the manager in place: ``factor``× buckets, re-hashed.

        Every short list moves to its new home bucket; capacities per
        bucket are unchanged, so total bucket space multiplies.  Returns
        the recorded event.
        """
        event = GrowthEvent(
            batch=batch,
            old_nbuckets=manager.nbuckets,
            new_nbuckets=manager.nbuckets * self.policy.factor,
            occupancy_before=manager.occupancy(),
        )
        old_buckets = manager.buckets
        manager.nbuckets = event.new_nbuckets
        manager.hash_fn = modular_hash(manager.nbuckets)
        manager.buckets = [
            type(old_buckets[0])(manager.bucket_size)
            for _ in range(manager.nbuckets)
        ]
        for bucket in old_buckets:
            for word, payload in bucket.lists.items():
                home = manager.buckets[manager.bucket_of(word)]
                home.lists[word] = payload
                home.npostings += len(payload)
        # Growth cannot overflow: per-word loads are unchanged and every
        # destination bucket holds a subset of one old bucket's words.
        self.events.append(event)
        return event

    def maybe_grow(self, manager: BucketManager, batch: int = -1):
        """Grow if the trigger fires; returns the event or None."""
        if self.should_grow(manager):
            return self.grow(manager, batch=batch)
        return None


class RebuildScheduler:
    """Staggers bucket-space rebuilds so at most ``max_concurrent``
    shards pay one per flush round.

    Growth rehashes a shard's entire bucket space and forces its next
    publish to a full clone — an O(index) latency spike.  When every
    shard crosses the occupancy threshold in the same flush round (the
    common case under uniform document routing), unscheduled growth
    makes *every* shard spike at once and the round's publish latency is
    the sum of the spikes.  The scheduler serializes them: each round,
    shards that want to grow enter a FIFO queue and at most
    ``max_concurrent`` (default 1) are granted; the rest flush without
    growing and are granted in a later round.  Deferral is safe — an
    over-threshold shard keeps absorbing batches exactly as it did
    before growth existed, just with more eviction pressure.

    Deterministic on purpose: grants depend only on the sequence of
    ``grant()`` calls and their ``wants`` arguments, so two executions
    fed the same flush/occupancy history (e.g. every replica of a shard,
    or a rebuilt replica replaying its op log) grow at identical batch
    boundaries.
    """

    def __init__(self, max_concurrent: int = 1) -> None:
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        self.max_concurrent = max_concurrent
        self._queue: list = []  # FIFO of shard ids awaiting a grant
        self.rounds = 0
        self.granted = 0
        self.deferred = 0

    @property
    def pending(self) -> tuple:
        """Shard ids queued for a future round (FIFO order)."""
        return tuple(self._queue)

    def grant(self, wants) -> frozenset:
        """One flush round: merge ``wants`` into the queue, pop grants.

        ``wants`` is the set of shard ids whose occupancy trigger fired
        this round (re-announcing a queued shard is idempotent).
        Returns the shard ids allowed to grow this round.
        """
        self.rounds += 1
        queued = set(self._queue)
        for shard_id in wants:
            if shard_id not in queued:
                self._queue.append(shard_id)
                queued.add(shard_id)
        grants = self._queue[: self.max_concurrent]
        del self._queue[: self.max_concurrent]
        self.granted += len(grants)
        self.deferred += len(self._queue)
        return frozenset(grants)

    def as_dict(self) -> dict:
        return {
            "rounds": self.rounds,
            "granted": self.granted,
            "deferred": self.deferred,
            "pending": list(self._queue),
        }


@dataclass
class RebalancePolicy:
    """When shard-level doc skew justifies a structural move.

    All thresholds are over *live* per-shard document counts sampled at
    a flush boundary.  Imbalance is max/mean: 1.0 is perfect balance,
    and a bound of ``max_imbalance`` tolerates the hottest shard holding
    that multiple of the mean before a split is planned.
    """

    #: Split the hottest shard when max/mean exceeds this bound.
    max_imbalance: float = 1.5
    #: Plan nothing until the collection holds this many live docs
    #: (tiny collections are all skew).
    min_docs: int = 64
    #: Never split a shard holding fewer live docs than this.
    min_shard_docs: int = 16
    #: Merge a shard holding less than this fraction of the mean.
    merge_threshold: float = 0.25
    #: Hard ceiling on active shards (0 = unlimited).
    max_shards: int = 16
    #: Flush rounds to sit out after a structural move (lets the moved
    #: mass settle before the next plan reads the counts).
    cooldown: int = 2

    def __post_init__(self) -> None:
        if self.max_imbalance <= 1.0:
            raise ValueError("max_imbalance must be > 1.0")
        if not 0.0 <= self.merge_threshold < 1.0:
            raise ValueError("merge_threshold must be in [0, 1)")
        if self.min_docs < 0 or self.min_shard_docs < 0:
            raise ValueError("doc floors must be >= 0")
        if self.max_shards < 0:
            raise ValueError("max_shards must be >= 0")
        if self.cooldown < 0:
            raise ValueError("cooldown must be >= 0")


class RebalancePlanner(RebuildScheduler):
    """A rebuild scheduler that also plans shard splits and merges.

    Extends :class:`RebuildScheduler` so a gateway runs *one* scheduler:
    bucket-growth grants keep their FIFO staggering (inherited
    unchanged), and :meth:`plan` adds at most one structural move per
    eligible flush round.  Deterministic on purpose — the plan depends
    only on the policy and the observed count history, so replaying the
    same ingest reproduces the same split/merge schedule.
    """

    def __init__(
        self,
        policy: RebalancePolicy | None = None,
        max_concurrent: int = 1,
    ) -> None:
        super().__init__(max_concurrent=max_concurrent)
        self.policy = policy or RebalancePolicy()
        self._cooldown_left = 0
        self.planned_splits = 0
        self.planned_merges = 0

    @staticmethod
    def imbalance(counts) -> float:
        """max/mean over per-shard live-doc counts (0.0 when empty).

        Accepts the ``{shard_id: count}`` mapping :meth:`plan` takes or
        a bare sequence of counts.
        """
        live = list(
            counts.values() if hasattr(counts, "values") else counts
        )
        total = sum(live)
        if not live or total == 0:
            return 0.0
        return max(live) / (total / len(live))

    def plan(self, counts: dict) -> tuple | None:
        """At most one structural move for this flush round.

        ``counts`` maps each *active* shard id to its live-doc count.
        Returns ``("split", victim)``, ``("merge", src, dst)`` (merge
        the smallest shard into the second smallest), or ``None``.
        Each returned move starts the cooldown clock.
        """
        policy = self.policy
        if self._cooldown_left > 0:
            self._cooldown_left -= 1
            return None
        total = sum(counts.values())
        if not counts or total < policy.min_docs:
            return None
        mean = total / len(counts)
        victim = max(counts, key=lambda s: (counts[s], -s))
        if (
            (not policy.max_shards or len(counts) < policy.max_shards)
            and counts[victim] > policy.max_imbalance * mean
            and counts[victim] >= policy.min_shard_docs
        ):
            self._cooldown_left = policy.cooldown
            self.planned_splits += 1
            return ("split", victim)
        if len(counts) > 2:
            order = sorted(counts, key=lambda s: (counts[s], s))
            smallest, second = order[0], order[1]
            if counts[smallest] < policy.merge_threshold * mean:
                self._cooldown_left = policy.cooldown
                self.planned_merges += 1
                return ("merge", smallest, second)
        return None

    def as_dict(self) -> dict:
        out = super().as_dict()
        out.update(
            {
                "planned_splits": self.planned_splits,
                "planned_merges": self.planned_merges,
                "cooldown_left": self._cooldown_left,
            }
        )
        return out
