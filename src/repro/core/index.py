"""The dual-structure index facade — the paper's primary contribution.

:class:`DualStructureIndex` ties the pieces together exactly as §2 describes:

* arriving documents accumulate in an :class:`~repro.core.memindex.InMemoryIndex`;
* at a batch boundary (:meth:`flush_batch`) each in-memory list moves to
  disk: **appended to the word's long list** when the directory has an
  entry, otherwise **inserted into bucket** ``h(w)``; bucket overflows
  promote the longest short list to a new long list via the policy machine;
* finally all buckets and the directory shadow-flush to disk and the
  RELEASE list is freed.

A word never has both a short and a long list (asserted in tests).  The
facade works on integer word ids; :class:`repro.textindex.TextDocumentIndex`
layers tokenization and a vocabulary on top for text documents.
"""

from __future__ import annotations

import enum
import io
from dataclasses import dataclass, field, replace

from ..storage import faults
from ..storage.diskarray import DiskArray, DiskArrayConfig
from ..storage.faults import FaultPlan, FaultyDiskArray
from ..storage.iotrace import IOTrace
from ..storage.profiles import SEAGATE_SCSI_1994, DiskProfile
from .buckets import BucketManager
from .delta import DeltaJournal, FrozenStateError
from .flush import FlushManager
from .longlists import LongListManager
from .memindex import InMemoryIndex
from .policy import Policy
from .positional import PositionalPostings
from .rebalance import BucketGrower, GrowthPolicy
from .postings import DocPostings

CP_FLUSH_BEGIN = faults.register_crash_point(
    "index.flush-begin",
    "flush_batch entered; no disk structure touched yet",
)
CP_BEFORE_WORD = faults.register_crash_point(
    "index.before-word-append",
    "mid-batch, before moving one in-memory list to disk",
)
CP_BEFORE_SHADOW_FLUSH = faults.register_crash_point(
    "index.before-shadow-flush",
    "all lists moved to disk; buckets/directory not yet shadow-flushed",
)
CP_BEFORE_RELEASE = faults.register_crash_point(
    "index.before-release",
    "shadow flush done; RELEASE list not yet freed",
)
CP_BEFORE_CLEAR = faults.register_crash_point(
    "index.before-clear",
    "batch fully on disk; in-memory batch not yet cleared",
)
CP_BEFORE_RECOVERY_POINT = faults.register_crash_point(
    "index.before-recovery-point",
    "batch complete; durable recovery point not yet updated",
)


class WordCategory(enum.Enum):
    """Per-update word classification behind the paper's Figure 7."""

    NEW = "new"
    BUCKET = "bucket"
    LONG = "long"


@dataclass(frozen=True)
class IndexConfig:
    """Tunable parameters of the dual-structure index.

    Defaults reproduce the base case of the paper's Table 4 as reconstructed
    in DESIGN.md §6.
    """

    nbuckets: int = 1024
    bucket_size: int = 1024
    block_postings: int = 64
    bucket_unit_bytes: int = 4
    ndisks: int = 4
    profile: DiskProfile | None = None
    allocator: str = "first-fit"
    policy: Policy = field(default_factory=Policy.recommended_new)
    store_contents: bool = False
    #: Store word positions and region flags in every posting (paper §1);
    #: implies content mode semantics for payloads.
    positional: bool = False
    nblocks_override: int | None = None
    trace_enabled: bool = True
    directory_entry_bytes: int = 16
    #: Grow the bucket space automatically when occupancy crosses the
    #: growth policy's threshold (paper §7's rebalancing strategy).
    grow_buckets: bool = False
    growth: GrowthPolicy = field(default_factory=GrowthPolicy)
    #: Keep a durable recovery point after every completed batch so
    #: :meth:`DualStructureIndex.recover` can roll back an aborted update
    #: (the paper's §1 restartability claim, made operational).
    crash_safe: bool = False
    #: Inject failures from this plan into every disk operation (testing).
    fault_plan: FaultPlan | None = None

    def __post_init__(self) -> None:
        if self.nbuckets <= 0 or self.bucket_size <= 0:
            raise ValueError("nbuckets and bucket_size must be > 0")
        if self.block_postings <= 0:
            raise ValueError("block_postings must be > 0")

    def array_config(self) -> DiskArrayConfig:
        return DiskArrayConfig(
            ndisks=self.ndisks,
            profile=self.profile or SEAGATE_SCSI_1994,
            allocator=self.allocator,
            store_contents=self.store_contents,
            nblocks_override=self.nblocks_override,
        )


@dataclass
class BatchResult:
    """Outcome of flushing one batch update."""

    batch: int
    nwords: int
    npostings: int
    new_words: int
    bucket_words: int
    long_words: int
    migrations: int
    io_ops: int
    in_place_updates: int

    @property
    def category_fractions(self) -> dict[WordCategory, float]:
        """Figure 7's per-update fractions (all zero for an empty batch)."""
        if self.nwords == 0:
            return {c: 0.0 for c in WordCategory}
        return {
            WordCategory.NEW: self.new_words / self.nwords,
            WordCategory.BUCKET: self.bucket_words / self.nwords,
            WordCategory.LONG: self.long_words / self.nwords,
        }


@dataclass
class IndexStats:
    """Point-in-time index statistics (the measurements of Section 5)."""

    batches: int
    long_words: int
    long_chunks: int
    long_postings: int
    long_blocks: int
    long_utilization: float
    avg_reads_per_long_list: float
    bucket_words: int
    bucket_postings: int
    bucket_occupancy: float
    disk_allocated_blocks: int
    disk_total_blocks: int
    in_place_updates: int
    in_place_possible: int
    io_ops: int


class DualStructureIndex:
    """Incrementally updatable inverted index over integer word ids."""

    #: Set by ``invariants.freeze_index`` on published snapshots; guarded
    #: at the mutation entry points so copy-on-write sharing violations
    #: fail loudly in debug mode.
    frozen = False

    def __init__(self, config: IndexConfig | None = None) -> None:
        self.config = config or IndexConfig()
        self.trace = IOTrace() if self.config.trace_enabled else None
        if self.config.fault_plan is not None:
            self.array = FaultyDiskArray(
                self.config.array_config(), self.config.fault_plan
            )
        else:
            self.array = DiskArray(self.config.array_config())
        self.buckets = BucketManager(
            self.config.nbuckets, self.config.bucket_size
        )
        content_cls = (
            PositionalPostings if self.config.positional else DocPostings
        )
        self.longlists = LongListManager(
            self.config.policy,
            self.array,
            self.config.block_postings,
            trace=self.trace,
            content_cls=content_cls,
        )
        self.flusher = FlushManager(
            self.array,
            self.config.block_postings,
            trace=self.trace,
            directory_entry_bytes=self.config.directory_entry_bytes,
        )
        self.memory = InMemoryIndex()
        self.grower = BucketGrower(self.config.growth) if (
            self.config.grow_buckets
        ) else None
        self._batches = 0
        self._next_doc_id = 0
        self._last_recovery_point: bytes | None = None
        self._aborted_batch: tuple | None = None
        self._aborted_next_doc_id = 0
        # Content-mode indexes journal every mutation for incremental
        # copy-on-write publication; evaluation-mode (size-only) indexes
        # skip the bookkeeping entirely.
        self.delta = DeltaJournal() if self.config.store_contents else None
        self._attach_journal()
        if self.config.crash_safe:
            self._save_recovery_point()

    def _attach_journal(self) -> None:
        """Point every mutable structure at the shared delta journal.

        Called at construction and again after :meth:`recover` replaces
        the structures wholesale.  The journal object itself is long-lived
        and cleared in place at each publish, so these references stay
        valid across batches.
        """
        journal = self.delta
        if journal is None:
            return
        self.buckets.journal = journal
        self.longlists.journal = journal
        self.flusher.journal = journal
        for disk_id, disk in enumerate(self.array.disks):
            disk.journal = journal
            disk.journal_disk = disk_id

    # -- ingest -----------------------------------------------------------

    @property
    def directory(self):
        """The long-list directory (read-only use expected)."""
        return self.longlists.directory

    def add_document(self, words, doc_id: int | None = None) -> int:
        """Add one document's words to the current in-memory batch.

        Returns the document id used.  Ids are assigned in arrival order
        when not supplied — the paper's increasing-identifier assumption
        that keeps all lists sorted and append-only.
        """
        if doc_id is None:
            doc_id = self._next_doc_id
        elif doc_id < self._next_doc_id:
            raise ValueError(
                f"doc ids must be non-decreasing; got {doc_id} after "
                f"{self._next_doc_id - 1}"
            )
        if self.config.positional:
            raise RuntimeError(
                "positional indexes ingest via add_document_occurrences"
            )
        self.memory.add_document(doc_id, words)
        self._next_doc_id = doc_id + 1
        return doc_id

    def add_document_occurrences(self, occurrences, doc_id: int | None = None):
        """Positional variant of :meth:`add_document`: ``occurrences`` are
        ``(word, position, Region)`` triples (paper §1's posting extras)."""
        if not self.config.positional:
            raise RuntimeError("index is not configured as positional")
        if doc_id is None:
            doc_id = self._next_doc_id
        elif doc_id < self._next_doc_id:
            raise ValueError(
                f"doc ids must be non-decreasing; got {doc_id} after "
                f"{self._next_doc_id - 1}"
            )
        self.memory.add_document_occurrences(doc_id, occurrences)
        self._next_doc_id = doc_id + 1
        return doc_id

    def add_counts(self, pairs) -> None:
        """Load word-occurrence pairs into the batch (evaluation mode)."""
        self.memory.add_counts(pairs)

    def classify(self, word: int) -> WordCategory:
        """Categorize a word as the paper's Figure 7 does: long if the
        directory knows it, bucket if a bucket holds it, new otherwise."""
        if word in self.longlists.directory:
            return WordCategory.LONG
        if self.buckets.contains(word):
            return WordCategory.BUCKET
        return WordCategory.NEW

    def flush_batch(self) -> BatchResult:
        """Write the in-memory index to disk as one batch update."""
        if self.frozen:
            raise FrozenStateError(
                "attempt to flush a frozen (published) snapshot"
            )
        if self.config.crash_safe:
            # Capture the batch before any disk structure is touched so an
            # aborted update can be re-applied after rollback.
            self._aborted_batch = self.memory.snapshot()
            self._aborted_next_doc_id = self._next_doc_id
        faults.crash_point(CP_FLUSH_BEGIN)
        counts = {c: 0 for c in WordCategory}
        npostings = 0
        migrations = 0
        ops_before = self.longlists.counters.io_ops
        in_place_before = self.longlists.counters.in_place_updates
        nwords = len(self.memory)

        for word, payload in self.memory.items():
            faults.crash_point(CP_BEFORE_WORD)
            category = self.classify(word)
            counts[category] += 1
            npostings += len(payload)
            if category is WordCategory.LONG:
                self.longlists.append(word, payload)
            else:
                for mword, mpayload in self.buckets.insert(word, payload):
                    migrations += 1
                    self.longlists.append(mword, mpayload)

        if self.grower is not None:
            # Rebalance before the flush so the enlarged region is what
            # gets written ("expanded and written in a larger region").
            grew = self.grower.maybe_grow(self.buckets, batch=self._batches)
            if grew is not None:
                self._note_growth()
        faults.crash_point(CP_BEFORE_SHADOW_FLUSH)
        profile = self.array.profile
        self.flusher.flush(
            self.buckets.flush_blocks(
                profile.block_size, self.config.bucket_unit_bytes
            ),
            self.longlists.directory,
        )
        faults.crash_point(CP_BEFORE_RELEASE)
        self.longlists.end_batch()
        if self.trace is not None:
            self.trace.end_batch()
        faults.crash_point(CP_BEFORE_CLEAR)
        self.memory.clear()
        self._batches += 1
        if self.delta is not None:
            self.delta.note_batch()
        if self.config.crash_safe:
            faults.crash_point(CP_BEFORE_RECOVERY_POINT)
            self._save_recovery_point()
            self._aborted_batch = None
        return BatchResult(
            batch=self._batches - 1,
            nwords=nwords,
            npostings=npostings,
            new_words=counts[WordCategory.NEW],
            bucket_words=counts[WordCategory.BUCKET],
            long_words=counts[WordCategory.LONG],
            migrations=migrations,
            io_ops=self.longlists.counters.io_ops - ops_before,
            in_place_updates=(
                self.longlists.counters.in_place_updates - in_place_before
            ),
        )

    def _note_growth(self) -> None:
        """Record the consequences of a bucket-space expansion.

        Growth rehashes every resident word, so the delta journal's dirty
        set no longer bounds the divergence — the next publish must fall
        back to a full clone.  The config is re-synced to the enlarged
        manager (a *new* frozen instance; a config object shared across
        shards is never mutated) so checkpoint serialization and the
        clone fingerprint see the bucket count that is actually live.
        """
        if self.delta is not None:
            self.delta.note_structure()
        if self.config.nbuckets != self.buckets.nbuckets:
            self.config = replace(self.config, nbuckets=self.buckets.nbuckets)

    def grow_bucket_space(self, grower: BucketGrower | None = None):
        """Expand the bucket space once, outside the flush path.

        The scheduled-rebuild entry point: a caller that staggers growth
        across shards (gateway replicas, the sharded index's rebuild
        scheduler) disables the in-flush auto-grower and applies growth
        explicitly between batches.  Uses ``grower`` (or this index's
        own, or a fresh one from ``config.growth``) and returns the
        :class:`~repro.core.rebalance.GrowthEvent`.
        """
        grower = grower or self.grower or BucketGrower(self.config.growth)
        event = grower.grow(self.buckets, batch=self._batches)
        self._note_growth()
        if self.config.crash_safe and self._last_recovery_point is not None:
            # Growth changed the batch-boundary state the recovery point
            # captures; re-snapshot so a later aborted flush rolls back
            # to the *grown* layout instead of silently undoing it.
            self._save_recovery_point()
        return event

    # -- crash recovery ----------------------------------------------------

    def _save_recovery_point(self) -> None:
        """Snapshot the whole index to an in-memory durable checkpoint.

        Written to a fresh buffer and swapped in only on success, so a
        crash *during* the save leaves the previous recovery point intact
        (the atomic-rename discipline a file-backed deployment would use).
        """
        from . import checkpoint

        buf = io.BytesIO()
        checkpoint.save(self, buf)
        self._last_recovery_point = buf.getvalue()

    def recover(self, replay: bool = True) -> BatchResult | None:
        """Roll back to the last completed shadow flush and resume.

        The paper's §1 restartability claim, as a driver: restore every
        structure (directory, buckets, free lists, flush regions, disk
        contents, counters) from the recovery point taken at the previous
        batch boundary, then — when ``replay`` is true and an aborted batch
        was captured — re-apply that batch and flush it again, returning
        the replayed :class:`BatchResult`.

        Requires ``crash_safe=True``.  The restored disk array is a plain
        one: any fault plan wired into the old array does not survive
        recovery (named crash points, being global, still fire).
        """
        if not self.config.crash_safe:
            raise RuntimeError(
                "recover() requires IndexConfig(crash_safe=True)"
            )
        from . import checkpoint

        assert self._last_recovery_point is not None
        restored = checkpoint.load(io.BytesIO(self._last_recovery_point))
        self.array = restored.array
        self.buckets = restored.buckets
        self.longlists = restored.longlists
        self.flusher = restored.flusher
        self.memory = restored.memory
        self.trace = restored.trace
        self._batches = restored._batches
        self._next_doc_id = restored._next_doc_id
        # The aborted batch may have grown the bucket space after the
        # recovery point was taken; the rollback undid the growth, so the
        # config must follow the restored manager back down (the replay
        # below re-applies the growth — and the re-sync — if it re-fires).
        if self.config.nbuckets != restored.buckets.nbuckets:
            self.config = replace(
                self.config, nbuckets=restored.buckets.nbuckets
            )
        # Recovery replaced the structures the delta journal was
        # observing: re-attach the same journal *before* the replay flush
        # (so the replayed batch is recorded) and void its coverage — the
        # next publish must fall back to a full clone.
        if self.delta is not None:
            self.delta.note_recovery()
            self._attach_journal()
        if replay and self._aborted_batch is not None:
            self.memory.restore(self._aborted_batch)
            self._next_doc_id = self._aborted_next_doc_id
            return self.flush_batch()
        self._aborted_batch = None
        return None

    # -- retrieval ---------------------------------------------------------

    def fetch(self, word: int):
        """Fetch a word's full posting list and the read ops it cost.

        Requires content mode.  Merges, in order: the on-disk long list
        (one read per chunk — the Figure 10 cost), or the bucket short list
        (one bucket read), plus any unflushed postings from the current
        in-memory batch ("the batch can be searched simultaneously with the
        larger index", §1).
        """
        if not self.config.store_contents:
            raise RuntimeError(
                "retrieval requires store_contents=True in IndexConfig"
            )
        content_cls = self.longlists.content_cls
        postings = content_cls()
        read_ops = 0
        entry = self.longlists.directory.get(word)
        if entry is not None:
            postings = self.longlists.read_postings(word)
            read_ops = entry.nchunks
        else:
            short = self.buckets.get(word)
            if short is not None:
                if not isinstance(short, content_cls):
                    raise RuntimeError("bucket holds count payloads")
                postings = short.copy()
                read_ops = 1
        pending = self.memory.get(word)
        if pending is not None:
            if not isinstance(pending, content_cls):
                raise RuntimeError("memory holds count payloads")
            postings.extend(pending.copy())
        return postings, read_ops

    def posting_count(self, word: int) -> int:
        """Total postings currently indexed for a word (any mode)."""
        total = 0
        entry = self.longlists.directory.get(word)
        if entry is not None:
            total += entry.npostings
        else:
            short = self.buckets.get(word)
            if short is not None:
                total += len(short)
        pending = self.memory.get(word)
        if pending is not None:
            total += len(pending)
        return total

    @property
    def ndocs(self) -> int:
        """Documents indexed so far (content usage)."""
        return self._next_doc_id

    @property
    def batches(self) -> int:
        """Completed batch flushes (the public face of ``_batches``)."""
        return self._batches

    # -- statistics ---------------------------------------------------------

    def stats(self) -> IndexStats:
        d = self.longlists.directory
        return IndexStats(
            batches=self._batches,
            long_words=d.nwords,
            long_chunks=d.total_chunks,
            long_postings=d.total_postings,
            long_blocks=d.total_blocks,
            long_utilization=d.utilization(self.config.block_postings),
            avg_reads_per_long_list=d.avg_reads_per_list(),
            bucket_words=self.buckets.total_words,
            bucket_postings=self.buckets.total_postings,
            bucket_occupancy=self.buckets.occupancy(),
            disk_allocated_blocks=self.array.allocated_blocks,
            disk_total_blocks=self.array.total_blocks,
            in_place_updates=self.longlists.counters.in_place_updates,
            in_place_possible=self.longlists.counters.appends_to_existing,
            io_ops=self.longlists.counters.io_ops,
        )
