"""Incremental document deletion (paper §3, penultimate paragraph).

The paper describes — without evaluating — the practical design for
deletions in an append-only inverted index:

  "existing implementations typically maintain a list of deleted document
  identifiers and filter any answer to a query through this list.  This
  deletes the document from the point of view of the user ...  To reclaim
  the space taken by the deleted document identifiers in the index, a
  background process sweeps the lists in the index one list at a time,
  removing any deleted documents.  After a sweep of the index, the list of
  deleted document identifiers can be thrown away."

:class:`DeletionManager` implements exactly that:

* :meth:`delete` adds a document to the filter set — O(1), no I/O;
* :meth:`filter` drops deleted documents from query answers;
* :meth:`begin_sweep` snapshots the filter set and enumerates every list
  (bucket short lists and directory long lists);
* :meth:`sweep_step` rewrites a bounded number of lists per call — the
  "one list at a time" background process, safe to interleave with batch
  updates and queries;
* when the sweep finishes, the snapshot is discarded from the filter set;
  documents deleted *during* the sweep remain filtered (they will be
  reclaimed by the next sweep).

Sweeping a long list physically rewrites it through the index's own
allocation policy (the old chunks retire to the RELEASE list), so space
reclamation pays the same I/O the paper's machinery charges everywhere
else.  Requires content mode — you cannot remove specific documents from
size-only lists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .index import DualStructureIndex


@dataclass
class SweepStats:
    """Progress counters for the current or last completed sweep."""

    lists_swept: int = 0
    postings_removed: int = 0
    lists_remaining: int = 0
    complete: bool = False


class DeletionManager:
    """Filter-and-sweep deletion on top of a dual-structure index."""

    def __init__(self, index: DualStructureIndex) -> None:
        if not index.config.store_contents:
            raise ValueError(
                "deletion requires content mode (store_contents=True)"
            )
        self.index = index
        self.deleted: set[int] = set()
        self._sweep_snapshot: set[int] | None = None
        self._sweep_queue: list[int] = []
        self.stats = SweepStats(complete=True)

    # -- the filter --------------------------------------------------------

    def delete(self, doc_id: int) -> None:
        """Mark a document deleted (takes effect immediately for queries)."""
        if not 0 <= doc_id < self.index.ndocs:
            raise ValueError(
                f"doc id {doc_id} outside [0, {self.index.ndocs})"
            )
        self._check_unfrozen("delete a document through")
        if self.index.delta is not None:
            self.index.delta.note_deletions()
        self.deleted.add(doc_id)

    def is_deleted(self, doc_id: int) -> bool:
        return doc_id in self.deleted

    def filter(self, doc_ids: Sequence[int]) -> list[int]:
        """Drop deleted documents from a query answer (paper: "filter any
        answer to a query through this list")."""
        if not self.deleted:
            return list(doc_ids)
        return [d for d in doc_ids if d not in self.deleted]

    @property
    def ndeleted(self) -> int:
        return len(self.deleted)

    # -- the background sweep -----------------------------------------------

    @property
    def sweeping(self) -> bool:
        return self._sweep_snapshot is not None

    def begin_sweep(self) -> int:
        """Snapshot the filter set and queue every list for rewriting.

        Returns the number of lists queued.  A sweep already in progress
        must finish first (one background sweeper, as in the paper).
        """
        if self.sweeping:
            raise RuntimeError("a sweep is already in progress")
        self._check_unfrozen("sweep")
        self._sweep_snapshot = set(self.deleted)
        # Long lists first (they hold the bulk of reclaimable postings),
        # then bucket words.
        self._sweep_queue = list(self.index.directory.words())
        self._sweep_queue.extend(self.index.buckets.words())
        self.stats = SweepStats(lists_remaining=len(self._sweep_queue))
        return len(self._sweep_queue)

    def sweep_step(self, max_lists: int = 1) -> SweepStats:
        """Rewrite up to ``max_lists`` lists, removing snapshot documents.

        Returns the running statistics; when the queue drains, the
        snapshot ids are dropped from the filter set and the sweep ends.
        """
        if not self.sweeping:
            raise RuntimeError("no sweep in progress; call begin_sweep()")
        if max_lists <= 0:
            raise ValueError("max_lists must be > 0")
        snapshot = self._sweep_snapshot
        assert snapshot is not None
        for _ in range(max_lists):
            if not self._sweep_queue:
                break
            word = self._sweep_queue.pop(0)
            self.stats.postings_removed += self._sweep_list(word, snapshot)
            self.stats.lists_swept += 1
        self.stats.lists_remaining = len(self._sweep_queue)
        if not self._sweep_queue:
            # "After a sweep of the index, the list of deleted document
            # identifiers can be thrown away."
            if snapshot and self.index.delta is not None:
                self.index.delta.note_deletions()
            self.deleted -= snapshot
            self._sweep_snapshot = None
            self.stats.complete = True
        return self.stats

    def sweep_all(self) -> SweepStats:
        """Run a full sweep to completion (foreground convenience)."""
        if not self.sweeping:
            self.begin_sweep()
        while self.sweeping:
            self.sweep_step(max_lists=64)
        return self.stats

    def _check_unfrozen(self, action: str) -> None:
        # The deleted set may be structurally shared between published
        # snapshots; the index-level frozen flag covers it.
        if getattr(self.index, "frozen", False):
            from .delta import FrozenStateError

            raise FrozenStateError(
                f"attempt to {action} a frozen (published) snapshot"
            )

    # -- internals -------------------------------------------------------------

    def _sweep_list(self, word: int, snapshot: set[int]) -> int:
        """Rewrite one list without the snapshot's documents; returns the
        number of postings removed."""
        entry = self.index.directory.get(word)
        if entry is not None:
            postings = self.index.longlists.read_postings(word)
            kept = postings.without_docs(snapshot)
            removed = len(postings) - len(kept)
            if removed:
                self.index.longlists.rewrite(word, kept)
            return removed
        short = self.index.buckets.get(word)
        if short is None:
            return 0  # the word migrated or vanished since queueing
        if not hasattr(short, "without_docs"):
            raise RuntimeError("bucket holds size-only payloads")
        kept = short.without_docs(snapshot)
        removed = len(short) - len(kept)
        if removed:
            bucket_id = self.index.buckets.bucket_of(word)
            bucket = self.index.buckets.buckets[bucket_id]
            # This mutates the Bucket directly (no overflow is possible
            # when shrinking a list), bypassing the manager's journal
            # hook — record the dirty bucket and word explicitly.
            if self.index.delta is not None:
                self.index.delta.note_bucket(bucket_id)
                self.index.delta.note_word(word)
            bucket.remove(word)
            if len(kept):
                bucket.insert(word, kept)
        return removed
