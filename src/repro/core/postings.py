"""Posting payloads: the contents of inverted lists.

The paper evaluates its index using only list *sizes* ("we do not need to
know the contents of each inverted list, only its size", Section 4.2), while
a real retrieval system stores document identifiers.  To keep one code path
for both — so that the evaluated algorithms and the usable library cannot
diverge — buckets and long lists operate on a *payload* abstraction with two
implementations:

* :class:`CountPostings` — a bare posting count; what the paper's pipeline
  manipulates.  Constant-size, fast: the benchmarks use it.
* :class:`DocPostings` — a strictly increasing sequence of document ids
  (documents are numbered in arrival order, so appends keep lists sorted —
  the property the paper's merge-based query processing relies on).  Encodes
  to bytes with delta + varint compression for the content-mode disks.

Payloads support the operations the dual-structure algorithms need:
``len``, ``extend`` (append a newer payload), and ``split`` (used by the
``fill`` style's WRITE primitive, which peels off at most one extent's worth
of postings at a time).
"""

from __future__ import annotations

from typing import Iterable, Protocol, runtime_checkable


# ---------------------------------------------------------------------------
# varint codec (LEB128, unsigned)
# ---------------------------------------------------------------------------


def encode_varint(value: int) -> bytes:
    """Encode a non-negative integer as an unsigned LEB128 varint."""
    if value < 0:
        raise ValueError(f"varint requires value >= 0, got {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode one varint from ``data`` at ``offset``.

    Returns ``(value, next_offset)``.  Raises ``ValueError`` on truncation.
    """
    value = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(data):
            raise ValueError("truncated varint")
        byte = data[pos]
        value |= (byte & 0x7F) << shift
        pos += 1
        if not byte & 0x80:
            return value, pos
        shift += 7


def encode_doc_ids(doc_ids: Iterable[int]) -> bytes:
    """Delta + varint encode a strictly increasing doc-id sequence."""
    out = bytearray()
    prev = -1
    for doc in doc_ids:
        if doc <= prev:
            raise ValueError(
                f"doc ids must be strictly increasing; {doc} after {prev}"
            )
        out += encode_varint(doc - prev - 1)
        prev = doc
    return bytes(out)


def decode_doc_ids(data: bytes) -> list[int]:
    """Inverse of :func:`encode_doc_ids`."""
    out: list[int] = []
    prev = -1
    pos = 0
    while pos < len(data):
        gap, pos = decode_varint(data, pos)
        prev = prev + 1 + gap
        out.append(prev)
    return out


# ---------------------------------------------------------------------------
# payloads
# ---------------------------------------------------------------------------


@runtime_checkable
class PostingPayload(Protocol):
    """What buckets and long lists need from list contents."""

    def __len__(self) -> int: ...

    def extend(self, other: "PostingPayload") -> None:
        """Append a newer payload (documents arrive in id order)."""

    def split(self, npostings: int) -> tuple["PostingPayload", "PostingPayload"]:
        """Return ``(head, tail)`` with ``len(head) == min(npostings, len)``."""

    def copy(self) -> "PostingPayload": ...


class CountPostings:
    """Size-only payload: exactly what the paper's pipeline tracks."""

    __slots__ = ("count",)

    def __init__(self, count: int) -> None:
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        self.count = count

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return f"CountPostings({self.count})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CountPostings) and other.count == self.count

    def extend(self, other: "CountPostings") -> None:
        if not isinstance(other, CountPostings):
            raise TypeError("cannot mix payload kinds in one index")
        self.count += other.count

    def add_count(self, count: int) -> None:
        """Fold ``count`` postings in without building a temporary payload.

        Fast path for the batch-loading hot loop; equivalent to
        ``extend(CountPostings(count))``.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        self.count += count

    def split(self, npostings: int) -> tuple["CountPostings", "CountPostings"]:
        if npostings < 0:
            raise ValueError("split point must be >= 0")
        head = min(npostings, self.count)
        return CountPostings(head), CountPostings(self.count - head)

    def copy(self) -> "CountPostings":
        return CountPostings(self.count)


class DocPostings:
    """Real payload: strictly increasing document ids."""

    __slots__ = ("doc_ids",)

    def __init__(self, doc_ids: Iterable[int] = ()) -> None:
        ids = list(doc_ids)
        for prev, cur in zip(ids, ids[1:]):
            if cur <= prev:
                raise ValueError(
                    f"doc ids must be strictly increasing; {cur} after {prev}"
                )
        if ids and ids[0] < 0:
            raise ValueError("doc ids must be >= 0")
        self.doc_ids = ids

    def __len__(self) -> int:
        return len(self.doc_ids)

    def __repr__(self) -> str:
        return f"DocPostings({self.doc_ids!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DocPostings) and other.doc_ids == self.doc_ids

    def extend(self, other: "DocPostings") -> None:
        if not isinstance(other, DocPostings):
            raise TypeError("cannot mix payload kinds in one index")
        if other.doc_ids:
            if self.doc_ids and other.doc_ids[0] <= self.doc_ids[-1]:
                raise ValueError(
                    "appended postings must have larger doc ids "
                    f"({other.doc_ids[0]} after {self.doc_ids[-1]})"
                )
            self.doc_ids.extend(other.doc_ids)

    def append_doc(self, doc_id: int) -> None:
        """Append one posting without building a temporary payload.

        Fast path for the per-posting indexing hot loop; equivalent to
        ``extend(DocPostings([doc_id]))`` including the ordering check.
        """
        ids = self.doc_ids
        if ids:
            if doc_id <= ids[-1]:
                raise ValueError(
                    "appended postings must have larger doc ids "
                    f"({doc_id} after {ids[-1]})"
                )
        elif doc_id < 0:
            raise ValueError("doc ids must be >= 0")
        ids.append(doc_id)

    def split(self, npostings: int) -> tuple["DocPostings", "DocPostings"]:
        if npostings < 0:
            raise ValueError("split point must be >= 0")
        head, tail = DocPostings(), DocPostings()
        head.doc_ids = self.doc_ids[:npostings]
        tail.doc_ids = self.doc_ids[npostings:]
        return head, tail

    def copy(self) -> "DocPostings":
        out = DocPostings()
        out.doc_ids = list(self.doc_ids)
        return out

    def without_docs(self, doc_ids) -> "DocPostings":
        """A copy with the given documents removed (deletion sweeps)."""
        out = DocPostings()
        out.doc_ids = [d for d in self.doc_ids if d not in doc_ids]
        return out

    def encode(self) -> bytes:
        """Delta + varint bytes for the content-mode disk blocks."""
        return encode_doc_ids(self.doc_ids)

    @classmethod
    def decode(cls, data: bytes) -> "DocPostings":
        out = cls()
        out.doc_ids = decode_doc_ids(data)
        return out


def empty_like(payload: PostingPayload) -> PostingPayload:
    """A fresh empty payload of the same kind as ``payload``.

    Works for any class implementing the payload protocol with a no-arg
    constructor (DocPostings, PositionalPostings, ...); CountPostings is
    special-cased for its required argument.
    """
    if isinstance(payload, CountPostings):
        return CountPostings(0)
    if not isinstance(payload, PostingPayload):
        raise TypeError(f"unknown payload kind {type(payload)!r}")
    return type(payload)()
