"""The in-memory inverted index for arriving documents (paper §2, ¶1).

"When a new document arrives it is parsed and its words are inserted into an
in-memory inverted index.  At some point the in-memory inverted index must
be written to disk.  Collecting many documents into an in-memory inverted
index before writing the index to disk amortizes the cost of storing a
posting."

This is the batching structure whose contents become one *batch update*.
It supports both payload kinds: real document ids (library use) and bare
counts (evaluation pipeline, where a batch update is a list of
word-occurrence pairs, paper §4.2).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from .positional import PositionalPostings, Region
from .postings import CountPostings, DocPostings, PostingPayload


class InMemoryIndex:
    """Accumulates postings for a batch of arriving documents."""

    def __init__(self) -> None:
        self._lists: dict[int, PostingPayload] = {}
        self._ndocs = 0
        self._npostings = 0
        # Cached ascending key list for items()/items_by_bucket — the
        # flush hot path iterates it once per batch, and re-sorting the
        # whole dict per call is O(W log W) for work only new words
        # change.  None = stale (a word was inserted or the dict was
        # replaced); rebuilt lazily on the next ordered iteration.
        self._sorted_words: list[int] | None = None

    def __len__(self) -> int:
        """Number of distinct words in the batch."""
        return len(self._lists)

    def __contains__(self, word: int) -> bool:
        return word in self._lists

    @property
    def ndocs(self) -> int:
        return self._ndocs

    @property
    def npostings(self) -> int:
        return self._npostings

    @property
    def size_units(self) -> int:
        """Memory footprint in the paper's units: words + postings."""
        return len(self._lists) + self._npostings

    def add_document(self, doc_id: int, words: Iterable[int]) -> None:
        """Index one document: one posting per *distinct* word.

        Duplicate words within the document are dropped, as the paper's
        lexical analysis does (§4.2).  Documents must arrive in increasing
        id order so posting lists stay sorted.
        """
        lists = self._lists
        seen: set[int] = set()
        npostings = 0
        for word in words:
            if word in seen:
                continue
            seen.add(word)
            payload = lists.get(word)
            if payload is None:
                lists[word] = DocPostings((doc_id,))
                self._sorted_words = None
            elif type(payload) is DocPostings:
                # Hot path: append into the existing list instead of
                # allocating a throwaway single-element payload per posting.
                payload.append_doc(doc_id)
            else:
                payload.extend(DocPostings([doc_id]))
            npostings += 1
        self._npostings += npostings
        self._ndocs += 1

    def add_document_occurrences(
        self, doc_id: int, occurrences: Iterable[tuple[int, int, Region]]
    ) -> None:
        """Index one document with word positions and regions.

        ``occurrences`` yields ``(word, position, region)`` triples; per
        word the positions are collected and the region flags or-ed, so the
        document still contributes exactly one posting per distinct word
        (the accounting the evaluation relies on).
        """
        per_word: dict[int, tuple[list[int], Region]] = {}
        for word, position, region in occurrences:
            if word in per_word:
                positions, regions = per_word[word]
                positions.append(position)
                per_word[word] = (positions, regions | region)
            else:
                per_word[word] = ([position], region)
        for word, (positions, regions) in per_word.items():
            single = PositionalPostings.single(
                doc_id, sorted(set(positions)), regions
            )
            payload = self._lists.get(word)
            if payload is None:
                self._lists[word] = single
                self._sorted_words = None
            else:
                payload.extend(single)
            self._npostings += 1
        self._ndocs += 1

    def add_counts(self, pairs: Iterable[tuple[int, int]]) -> None:
        """Load a batch of word-occurrence pairs (evaluation mode)."""
        lists = self._lists
        npostings = 0
        for word, count in pairs:
            if count <= 0:
                raise ValueError(
                    f"word {word} has non-positive count {count}"
                )
            payload = lists.get(word)
            if payload is None:
                lists[word] = CountPostings(count)
                self._sorted_words = None
            elif type(payload) is CountPostings:
                payload.add_count(count)
            else:
                payload.extend(CountPostings(count))
            npostings += count
        self._npostings += npostings

    def get(self, word: int) -> PostingPayload | None:
        """The in-memory list for a word, or None."""
        return self._lists.get(word)

    def _ordered_words(self) -> list[int]:
        """The cached ascending key list, rebuilt only after an insert."""
        words = self._sorted_words
        if words is None:
            words = self._sorted_words = sorted(self._lists)
        return words

    def items(self) -> Iterator[tuple[int, PostingPayload]]:
        """All (word, in-memory list) pairs in ascending word order.

        Sorted order matters operationally: the paper notes that sorting
        the in-memory lists into bucket order lets an implementation keep
        only one bucket in memory at a time during the merge.  The sort
        itself is cached across calls and invalidated only when a new
        word enters the batch — flushing iterates these pairs once per
        batch, and appends to existing lists must not re-pay it.
        """
        for word in self._ordered_words():
            yield word, self._lists[word]

    def items_by_bucket(self, hash_fn, nbuckets: int):
        """All (word, list) pairs grouped by destination bucket.

        The paper's memory optimization (§4.3): "the cost of maintaining
        all the buckets in memory during the update process can be avoided
        by sorting the in-memory lists into bucket order and then merging
        the in-memory list with the buckets, requiring only one bucket to
        be in memory at any single point in time."  Within each bucket the
        words stay in ascending order, so the overall outcome is identical
        to the word-ordered merge (asserted in tests).

        Yields ``(bucket_id, [(word, payload), ...])`` in bucket order,
        skipping empty buckets.
        """
        groups: dict[int, list[tuple[int, PostingPayload]]] = {}
        for word in self._ordered_words():
            groups.setdefault(hash_fn(word) % nbuckets, []).append(
                (word, self._lists[word])
            )
        for bucket_id in sorted(groups):
            yield bucket_id, groups[bucket_id]

    def snapshot(self) -> tuple:
        """An independent copy of the batch contents (crash recovery).

        Taken by the index before a flush starts mutating disk structures,
        so an aborted batch can be re-applied after rollback.  The copies
        belong to whoever restores them — :meth:`restore` moves them in
        without re-copying — so call :meth:`snapshot` again if another
        independent copy is needed.
        """
        return (
            [(word, payload.copy()) for word, payload in self._lists.items()],
            self._ndocs,
            self._npostings,
        )

    def restore(self, snapshot: tuple) -> None:
        """Replace the batch contents with a :meth:`snapshot`'s payloads.

        **Move semantics**: :meth:`snapshot` already produced independent
        payload copies, so restore adopts them directly instead of paying
        a second deep copy per list.  The snapshot is *consumed* — after
        a restore the index owns (and will mutate) those payloads, so a
        snapshot must be restored at most once.  The crash-recovery loop
        satisfies this by construction: ``flush_batch`` re-snapshots the
        restored memory before touching anything, so every recovery
        attempt replays from a fresh copy.
        """
        lists, ndocs, npostings = snapshot
        self._lists = dict(lists)
        self._ndocs = ndocs
        self._npostings = npostings
        self._sorted_words = None

    def clear(self) -> None:
        """Reset after the batch has been written to disk."""
        self._lists.clear()
        self._ndocs = 0
        self._npostings = 0
        self._sorted_words = None
