"""Batch-boundary flushes of the buckets and the directory.

Paper Section 3: "Periodically, the buckets and the directory are written to
disk.  At this time, the disk blocks for the previous buckets and directory
are returned to free space for the disks."  And Section 4.3: "At the end of
each batch update, all buckets are flushed to disk."

We implement this as **shadow flushes**: each flush allocates fresh regions,
writes them, and only then frees the previous regions.  An aborted
incremental update therefore leaves the prior flush intact on disk — the
restartability property the paper claims for its data structures (§1).

Layout: the bucket region is striped evenly across all disks (Figure 6's
trace opens with one large bucket write per disk); the directory goes to a
single round-robin-chosen disk.  Bucket writes are huge and contiguous, so
after coalescing they run at the data rate — the paper's observation that
bucket flushes are bandwidth-bound while long-list updates are seek-bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..storage import faults
from ..storage.block import Chunk
from ..storage.diskarray import DiskArray
from ..storage.disk import DiskFullError
from ..storage.iotrace import IOTrace, OpKind, Target, TraceOp
from .directory import Directory

CP_BEGIN = faults.register_crash_point(
    "flush.begin", "entry of FlushManager.flush, nothing allocated yet"
)
CP_AFTER_BUCKET_WRITES = faults.register_crash_point(
    "flush.after-bucket-writes",
    "new bucket regions allocated and written; directory not yet",
)
CP_AFTER_DIRECTORY_WRITE = faults.register_crash_point(
    "flush.after-directory-write",
    "new regions fully written; previous regions not yet freed",
)
CP_MID_FREE = faults.register_crash_point(
    "flush.mid-free",
    "previous bucket regions freed; previous directory region not yet",
)


@dataclass
class FlushCounters:
    """Cumulative flush activity."""

    flushes: int = 0
    bucket_writes: int = 0
    bucket_blocks: int = 0
    directory_writes: int = 0
    directory_blocks: int = 0


class FlushManager:
    """Shadow-writes the bucket region and directory at batch boundaries."""

    #: Delta-journal hook (attached by ``DualStructureIndex`` in content
    #: mode).  Region blocks carry no stored contents, but noting their
    #: turnover keeps the journal a self-contained record of every block
    #: whose allocation state changed between publishes.
    journal = None

    def __init__(
        self,
        array: DiskArray,
        block_postings: int,
        trace: IOTrace | None = None,
        directory_entry_bytes: int = 16,
    ) -> None:
        self.array = array
        self.block_postings = block_postings
        self.trace = trace
        self.directory_entry_bytes = directory_entry_bytes
        self.counters = FlushCounters()
        self._bucket_regions: list[Chunk] = []
        self._directory_region: Chunk | None = None

    def _record(self, target: Target, chunk: Chunk) -> None:
        if self.trace is not None:
            self.trace.append(
                TraceOp(
                    kind=OpKind.WRITE,
                    target=target,
                    disk=chunk.disk,
                    start=chunk.start,
                    nblocks=chunk.nblocks,
                )
            )

    def _allocate_striped(self, total_blocks: int) -> list[Chunk]:
        """Allocate ``total_blocks`` split evenly across the disks."""
        ndisks = self.array.ndisks
        per_disk = -(-total_blocks // ndisks)
        chunks: list[Chunk] = []
        for disk_id in range(ndisks):
            chunk = self.array.allocate_on(disk_id, per_disk)
            if chunk is None:
                # Fall back to any disk with room rather than failing the
                # whole flush; the stripe is a layout preference, not a
                # correctness requirement.
                try:
                    chunk = self.array.allocate_chunk(per_disk)
                except DiskFullError:
                    for c in chunks:
                        self.array.free_chunk(c)
                    raise
            chunks.append(chunk)
        return chunks

    def flush(self, bucket_blocks: int, directory: Directory) -> None:
        """Write the bucket region (``bucket_blocks`` blocks, striped) and
        the directory to fresh regions; free the old ones."""
        faults.crash_point(CP_BEGIN)
        new_bucket_regions = self._allocate_striped(bucket_blocks)
        for chunk in new_bucket_regions:
            if self.journal is not None:
                self.journal.note_blocks(
                    chunk.disk, chunk.start, chunk.nblocks
                )
            self._record(Target.BUCKET, chunk)
            self.counters.bucket_writes += 1
            self.counters.bucket_blocks += chunk.nblocks
        faults.crash_point(CP_AFTER_BUCKET_WRITES)

        dir_blocks = directory.flush_blocks(
            self.array.profile.block_size, self.directory_entry_bytes
        )
        new_directory_region = self.array.allocate_chunk(dir_blocks)
        if self.journal is not None:
            self.journal.note_blocks(
                new_directory_region.disk,
                new_directory_region.start,
                new_directory_region.nblocks,
            )
        self._record(Target.DIRECTORY, new_directory_region)
        self.counters.directory_writes += 1
        self.counters.directory_blocks += dir_blocks

        # Shadow rule: free the previous regions only after the new ones
        # are written.
        faults.crash_point(CP_AFTER_DIRECTORY_WRITE)
        for chunk in self._bucket_regions:
            self.array.free_chunk(chunk)
        faults.crash_point(CP_MID_FREE)
        if self._directory_region is not None:
            self.array.free_chunk(self._directory_region)
        self._bucket_regions = new_bucket_regions
        self._directory_region = new_directory_region
        self.counters.flushes += 1

    @property
    def resident_blocks(self) -> int:
        """Blocks currently held by the live bucket + directory regions."""
        blocks = sum(c.nblocks for c in self._bucket_regions)
        if self._directory_region is not None:
            blocks += self._directory_region.nblocks
        return blocks
