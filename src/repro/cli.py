"""Command-line interface.

Five subcommands cover the library's main entry points::

    repro index DIR -o index.ckpt [--policy SPEC] [--positional]
        Build an index over the ``*.txt`` files of a directory (one
        document per file, ingested in sorted filename order, one batch),
        checkpoint it, and save the vocabulary next to it.

    repro query INDEX.ckpt "cat AND dog" [--phrase | --near K]
        Load a checkpointed index and run a boolean / phrase / proximity
        query; prints matching doc ids (= ingest order) and the I/O cost.

    repro experiment [--policy SPEC ...] [--days N] [--scale S] [--exercise]
                     [--jobs N] [--cache-dir DIR] [--shards N] [--doc-skew S]
                     [--inject-faults] [--fault-rate R] [--fault-seed S]
        Run the paper's pipeline on the synthetic News workload and print
        the evaluation metrics.  ``--policy`` may repeat; with several
        policies and ``--jobs N`` the policy-dependent stages fan out over
        a process pool.  ``--inject-faults`` exercises the disks with
        transient I/O faults injected and reports the retry counts (with
        ``--jobs > 1`` each policy gets a deterministically re-seeded
        plan — faults are never dropped).

    repro sweep [--policy SPEC ...] [--jobs N] [--exercise] [--days N]
                [--scale S] [--json PATH] [--cache-dir DIR] [--print-key]
        Sweep the Table-2 policy space (default: the six Figure-8
        policies) through the pipeline, optionally in parallel, and print
        the per-policy metrics.  ``--json`` dumps the machine-readable
        BENCH_sweep-style report; ``--cache-dir`` (or ``REPRO_CACHE_DIR``)
        persists the policy-independent stages across invocations;
        ``--print-key`` prints the config fingerprint (for CI cache keys)
        and exits.

    repro serve-bench [--readers N] [--cycles N] [--docs-per-batch N]
                      [--publish-mode clone|cow] [--buffer-cache BLOCKS]
                      [--shards N] [--flush-jobs N] [--differential]
                      [--gateway] [--replicas K] [--rebuild-stagger on|off]
                      [--grow-buckets] [--growth-threshold F]
                      [--read-tier snapshot|immediate]
                      [--background-merge] [--arrival closed|open]
                      [--arrival-rate QPS] [--arrival-queries N]
                      [--queue-limit N] [--shard-timeout S]
                      [--batch-size N] [--batch-delay-us US] [--coalesce]
                      [--doc-skew S] [--rebalance]
                      [--rebalance-threshold X]
                      [--json PATH] [--no-verify]
                      [--inject-faults] [--fault-rate R] [--fault-seed S]
        Run the snapshot-isolated serving benchmark: N reader threads
        issue a mixed boolean/streamed/vector query load against published
        snapshots while the writer flushes batch updates; prints
        throughput, p50/p95/p99 query and publish latency, and cache
        statistics, and writes the machine-readable BENCH_serving report
        with ``--json``.  ``--publish-mode cow`` (the default) publishes
        incrementally via the delta journal; ``clone`` uses the full
        checkpoint clone.  ``--differential`` cross-checks every published
        snapshot against a full-clone oracle.  ``--inject-faults`` crashes
        the writer mid-flush on a rotating schedule of crash points (plus
        transient disk faults) and recovers.  ``--gateway`` serves through
        one worker process per shard behind the asyncio scatter-gather
        gateway (per-shard deadlines, bounded-queue admission control,
        checkpoint+oplog failover); ``--arrival open`` offers a
        deterministic Poisson schedule at ``--arrival-rate`` whose
        recorded latencies include queue wait.  Gateway reads travel in
        adaptive micro-batches (``--batch-size``, ``--batch-delay-us``;
        ``--batch-size 1`` restores the unbatched wire protocol) and
        ``--coalesce`` single-flights identical concurrent queries.
        ``--doc-skew`` pins explicit doc ids onto Zipf-drawn target
        shards, and ``--rebalance`` (gateway only) answers the skew with
        online shard splits/merges cut over at flush boundaries.

    repro check INDEX.ckpt
        Load a checkpointed index and verify the dual-structure
        invariants (exit status 1 on violation).

    repro figure {table1,fig1,fig7,...,fig14}
        Regenerate one of the paper's tables/figures and print it.

    repro stats [--days N] [--scale S]
        Print the Table-1 corpus statistics of the synthetic workload.

Policy specs are either a named policy (``update-optimized``,
``query-optimized``, ``balanced``, ``recommended-new``,
``recommended-whole``, ``adaptive-new``) or a colon-joined tuple
``STYLE:LIMIT[:ALLOC:K]``, e.g. ``new:z:proportional:2.0``, ``whole:0``,
``fill:z``.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from .core.index import IndexConfig
from .core.policy import Alloc, Limit, Policy, Style
from .pipeline.experiment import Experiment, ExperimentConfig
from .storage.faults import FaultPlan
from .textindex import TextDocumentIndex
from .workload.synthetic import SyntheticNewsConfig

NAMED_POLICIES = {
    "update-optimized": Policy.update_optimized,
    "query-optimized": Policy.query_optimized,
    "balanced": Policy.balanced,
    "recommended-new": Policy.recommended_new,
    "recommended-whole": Policy.recommended_whole,
    "adaptive-new": Policy.adaptive_new,
}


def parse_policy(spec: str) -> Policy:
    """Parse a policy spec (named or ``STYLE:LIMIT[:ALLOC:K]``)."""
    named = NAMED_POLICIES.get(spec)
    if named is not None:
        return named()
    parts = spec.split(":")
    if len(parts) not in (2, 4):
        raise argparse.ArgumentTypeError(
            f"bad policy spec {spec!r}; expected a name "
            f"({', '.join(sorted(NAMED_POLICIES))}) or STYLE:LIMIT[:ALLOC:K]"
        )
    try:
        style = Style(parts[0])
        limit = Limit(parts[1])
        if len(parts) == 2:
            return Policy(style=style, limit=limit)
        alloc = Alloc(parts[2])
        return Policy(style=style, limit=limit, alloc=alloc, k=float(parts[3]))
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad policy spec {spec!r}: {exc}")


# -- subcommands -------------------------------------------------------------------


def cmd_index(args) -> int:
    directory = pathlib.Path(args.directory)
    files = sorted(directory.glob("*.txt"))
    if not files:
        print(f"no *.txt files under {directory}", file=sys.stderr)
        return 1
    index = TextDocumentIndex(
        IndexConfig(
            policy=args.policy,
            store_contents=True,
            positional=args.positional,
            nbuckets=args.nbuckets,
            bucket_size=args.bucket_size,
        )
    )
    for path in files:
        doc_id = index.add_document(path.read_text(encoding="utf-8"))
        print(f"indexed doc {doc_id}: {path.name}")
    result = index.flush_batch()
    index.save(args.output)
    print(
        f"indexed {len(files)} documents ({result.npostings} postings) "
        f"under policy '{args.policy.name}'"
    )
    print(f"snapshot: {args.output}")
    return 0


def _load_index(path: str) -> TextDocumentIndex:
    return TextDocumentIndex.load(path)


def cmd_query(args) -> int:
    index = _load_index(args.index)
    if args.phrase:
        answer = index.search_phrase(args.query)
        kind = "phrase"
    elif args.near is not None:
        words = args.query.split()
        if len(words) != 2:
            print("--near queries take exactly two words", file=sys.stderr)
            return 1
        answer = index.search_near(words[0], words[1], args.near)
        kind = f"near({args.near})"
    else:
        answer = index.search_boolean(args.query)
        kind = "boolean"
    print(
        f"{kind} query {args.query!r}: {len(answer.doc_ids)} documents "
        f"({answer.read_ops} read ops)"
    )
    for doc in answer.doc_ids:
        print(f"  doc {doc}")
    return 0


def _cache_from_args(args):
    from .pipeline.artifacts import ArtifactCache

    if getattr(args, "cache_dir", None):
        return ArtifactCache(args.cache_dir)
    return ArtifactCache.from_env()


def _fault_plan_from_args(args) -> FaultPlan | None:
    if not args.inject_faults:
        return None
    return FaultPlan(seed=args.fault_seed, transient_rate=args.fault_rate)


def _print_run(policy: Policy, run, fault_plan, args, exercise: bool) -> None:
    disks = run.disks
    print(f"policy:               {policy.name}")
    print(f"updates:              {disks.series.nupdates}")
    print(f"long-list I/O ops:    {disks.series.io_ops[-1]:,}")
    print(f"avg reads per list:   {disks.final_avg_reads:.2f}")
    print(f"long-list utilization {disks.final_utilization:.1%}")
    print(
        "in-place updates:     "
        f"{disks.counters.in_place_updates:,} "
        f"({disks.counters.in_place_fraction:.0%} of possible)"
    )
    if exercise:
        if run.exercise.feasible:
            print(f"simulated build time: {run.exercise.total_s:.1f} s")
            if fault_plan is not None and run.exercise.result is not None:
                print(
                    "fault injection:      "
                    f"{run.exercise.result.total_retries} retries "
                    f"(rate {args.fault_rate}, seed {args.fault_seed})"
                )
        else:
            print(f"exercise: INFEASIBLE ({run.exercise.reason})")


def _run_sharded_experiment(args, experiment, policies) -> int:
    from .pipeline.sharding import ShardedExperiment

    sharded = ShardedExperiment(
        experiment, args.shards, router_seed=args.router_seed
    )
    for i, policy in enumerate(policies):
        if i:
            print()
        report = sharded.run_policy(policy)
        print(f"policy:               {report.policy}")
        skew = (
            f", doc skew {report.doc_skew}" if report.doc_skew else ""
        )
        print(f"shards:               {report.nshards} "
              f"(router seed {report.router_seed}{skew})")
        print(f"long-list I/O total:  {report.io_ops_total:,}")
        print(f"critical-path I/O:    {report.io_ops_critical_path:,} "
              f"(parallel speedup {report.parallel_speedup:.2f}x)")
        print(f"avg reads per list:   {report.avg_reads_per_list:.2f}")
        print(f"long-list utilization {report.utilization:.1%}")
        print(f"imbalance (max/mean): docs {report.doc_imbalance:.2f}x, "
              f"I/O {report.io_imbalance:.2f}x "
              f"(one split of the hottest shard -> "
              f"{report.doc_imbalance_post_split:.2f}x)")
        for m in report.shards:
            print(
                f"  shard {m.shard}: {m.io_ops:>9,} io ops, "
                f"util {m.utilization:.1%}, "
                f"reads/list {m.avg_reads_per_list:.2f}, "
                f"{m.npostings:,} postings, {m.ndocs:,} docs"
            )
    return 0


def cmd_experiment(args) -> int:
    fault_plan = _fault_plan_from_args(args)
    policies = args.policy or [Policy.recommended_new()]
    config = ExperimentConfig(
        workload=SyntheticNewsConfig(
            days=args.days, scale=args.scale, doc_skew=args.doc_skew
        ),
        fault_plan=fault_plan,
    )
    experiment = Experiment(config, cache=_cache_from_args(args))
    if args.shards > 1:
        # Document-partitioned pipeline (one full run per shard); the
        # default --shards 1 stays on the exact single-volume path below.
        if args.exercise or args.inject_faults:
            print(
                "note: --shards ignores --exercise/--inject-faults "
                "(the sharded pipeline reports the I/O cost model only)",
                file=sys.stderr,
            )
        return _run_sharded_experiment(args, experiment, policies)
    exercise = args.exercise or args.inject_faults
    if fault_plan is not None and args.jobs > 1:
        print(
            "note: --inject-faults with --jobs > 1 re-seeds one fault plan "
            "per policy deterministically (identical under any job count)",
            file=sys.stderr,
        )
    runs = experiment.run_policies(policies, exercise=exercise, jobs=args.jobs)
    for i, policy in enumerate(policies):
        if i:
            print()
        _print_run(policy, runs[policy.name], fault_plan, args, exercise)
    return 0


def cmd_sweep(args) -> int:
    from .core.policy import figure8_policies
    from .pipeline.artifacts import bucket_fingerprint
    from .pipeline.sweep import PolicySweep

    fault_plan = _fault_plan_from_args(args)
    policies = args.policy or figure8_policies()
    config = ExperimentConfig(
        workload=SyntheticNewsConfig(days=args.days, scale=args.scale),
        fault_plan=fault_plan,
    )
    if args.print_key:
        print(bucket_fingerprint(config))
        return 0
    experiment = Experiment(config, cache=_cache_from_args(args))
    exercise = args.exercise or args.inject_faults
    sweep = PolicySweep(
        experiment, policies, jobs=args.jobs, exercise=exercise
    )
    report = sweep.run()
    header = f"{'policy':<14} {'io ops':>9} {'util':>7} {'reads':>6} {'disks s':>8}"
    if exercise:
        header += f" {'exercise':>9}"
    print(header)
    for row in report.reports:
        d = row.as_dict()
        line = (
            f"{d['policy']:<14} {d['io_ops']:>9,} "
            f"{d['utilization']:>7.1%} {d['avg_reads_per_list']:>6.2f} "
            f"{d['disks_seconds']:>8.3f}"
        )
        if exercise:
            if d.get("feasible"):
                line += f" {d['build_seconds_simulated']:>8.1f}s"
            else:
                line += f" {'INFEAS':>9}"
        print(line)
    print(
        f"mode: {report.mode} (jobs {report.jobs_effective}/"
        f"{report.jobs_requested}); shared stages "
        + ", ".join(
            f"{k} {v:.2f}s" for k, v in sorted(report.shared_seconds.items())
        )
        + (f"; cache {report.cache_events}" if report.cache_events else "")
    )
    for warning in report.warnings:
        print(f"warning: {warning}", file=sys.stderr)
    if args.json:
        report.write_json(args.json)
        print(f"wrote {args.json}")
    return 0


def cmd_serve_bench(args) -> int:
    from .service import LoadConfig, LoadGenerator

    verify = not args.no_verify
    if args.gateway and verify:
        # Per-query reference pinning cannot cross the process boundary;
        # differential boundary probes are the gateway's correctness net.
        verify = False
        print(
            "note: --gateway disables per-query verification "
            "(use --differential for boundary probes)"
        )
    if args.read_tier == "immediate" and verify:
        # Immediate answers reflect the live memory tier, not a pinned
        # reference snapshot; the mirror differential covers them.
        verify = False
        print(
            "note: --read-tier immediate disables per-query "
            "verification (use --differential for mid-buffer probes)"
        )
    config = LoadConfig(
        readers=args.readers,
        flush_cycles=args.cycles,
        docs_per_batch=args.docs_per_batch,
        vocabulary=args.vocabulary,
        seed=args.seed,
        cache_capacity=args.cache_capacity,
        verify=verify,
        delete_every=args.delete_every,
        crash_every=(
            4
            if args.inject_faults
            and not args.gateway
            and args.read_tier != "immediate"
            else 0
        ),
        transient_rate=args.fault_rate if args.inject_faults else 0.0,
        fault_seed=args.fault_seed,
        pace_s=args.pace,
        publish_mode=args.publish_mode,
        buffer_cache_blocks=args.buffer_cache,
        differential=args.differential,
        shards=args.shards,
        router_seed=args.router_seed,
        flush_jobs=args.flush_jobs,
        flush_executor=args.flush_executor,
        gateway=args.gateway,
        shard_timeout_s=args.shard_timeout,
        queue_limit=args.queue_limit,
        arrival=args.arrival,
        arrival_rate_qps=args.arrival_rate,
        arrival_queries=args.arrival_queries,
        read_tier=args.read_tier,
        background_merge=args.background_merge,
        visibility_probes=True,
        replicas=args.replicas,
        rebuild_stagger=args.rebuild_stagger == "on",
        grow_buckets=args.grow_buckets,
        growth_threshold=args.growth_threshold,
        batch_size=args.batch_size,
        batch_delay_us=args.batch_delay_us,
        coalesce=args.coalesce,
        doc_skew=args.doc_skew,
        rebalance=args.rebalance,
        rebalance_threshold=args.rebalance_threshold,
    )
    report = LoadGenerator(config).run()
    overall = report.latency["overall"]
    sharding = (
        f" across {args.shards} shards" if args.shards > 1 else ""
    )
    if args.gateway:
        if args.replicas > 1:
            sharding += f" ({args.replicas} worker processes each)"
        else:
            sharding += " (one worker process each)"
    print(
        f"served {report.queries} queries from {args.readers} readers over "
        f"{args.cycles} flush cycles{sharding} ({report.wall_seconds:.2f} s)"
    )
    if report.open_loop:
        ol = report.open_loop
        print(
            f"open loop:        {ol['scheduled']} arrivals offered at "
            f"{ol['offered_rate_qps']:,.0f}/s over "
            f"{ol['schedule_seconds']:.2f} s "
            f"({ol['completed']} completed, {ol['shed']} shed, "
            f"{ol['deadline_exceeded']} past deadline)"
        )
    print(f"throughput:       {report.throughput_qps:,.0f} queries/s")
    for kind in ("boolean", "streamed", "vector", "overall"):
        summary = report.latency[kind]
        if summary.get("count"):
            print(
                f"latency {kind:<9} p50 {summary['p50'] * 1e6:8.1f} us   "
                f"p95 {summary['p95'] * 1e6:8.1f} us   "
                f"p99 {summary['p99'] * 1e6:8.1f} us   "
                f"({summary['count']} queries)"
            )
    publish = report.latency.get("publish", {})
    if publish.get("count"):
        print(
            f"latency publish   p50 {publish['p50'] * 1e6:8.1f} us   "
            f"p95 {publish['p95'] * 1e6:8.1f} us   "
            f"p99 {publish['p99'] * 1e6:8.1f} us   "
            f"({publish['count']} publishes)"
        )
    cache = report.cache
    print(
        f"result cache:     {cache['hits']} hits / {cache['misses']} misses "
        f"(rate {cache['hit_rate']:.1%}), {cache['evictions']} evictions, "
        f"{cache['invalidations']} invalidations "
        f"({cache['entries_retained']} entries carried across publishes)"
    )
    if report.buffer_cache:
        buffers = report.buffer_cache
        print(
            f"buffer cache:     {buffers['hits']} hits / "
            f"{buffers['misses']} misses (rate {buffers['hit_rate']:.1%}), "
            f"{buffers['evictions']} evictions, "
            f"{buffers['invalidated']} delta-invalidated"
        )
    service = report.service
    if report.gateway:
        gw = report.gateway
        print(
            f"gateway:          {gw['publishes']} worker publishes "
            f"({gw['cow_publishes']} cow, "
            f"{gw['full_clone_publishes']} full, "
            f"{gw['cow_fallbacks']} fallbacks), "
            f"{gw['failovers']} failovers, "
            f"{gw['replayed_ops']} ops replayed, "
            f"{gw['shed']} shed, "
            f"{gw['deadline_exceeded']} deadline misses"
        )
        repl = gw.get("replication", {})
        if repl.get("replicas", 1) > 1 or repl.get("rebuilds_started"):
            print(
                f"replication:      {repl['replicas']} replicas/shard, "
                f"{repl['reads_served']} reads served "
                f"({repl['read_failovers']} failed over, "
                f"{repl['stale_discarded']} stale discarded, "
                f"{repl['reads_waited_for_rebuild']} waited on rebuild), "
                f"{repl['rebuilds_completed']}/"
                f"{repl['rebuilds_started']} rebuilds done, "
                f"{repl['checkpoints_deferred']} checkpoints deferred, "
                f"{repl['replica_divergences']} divergences"
            )
        scheduler = repl.get("scheduler")
        if scheduler and scheduler.get("granted"):
            print(
                f"rebuild sched:    {scheduler['granted']} growths "
                f"granted over {scheduler['rounds']} rounds "
                f"({scheduler['deferred']} deferred, "
                f"{len(scheduler['pending'])} still queued)"
            )
        reb = gw.get("rebalance", {})
        if reb.get("enabled") or reb.get("splits") or reb.get("merges"):
            print(
                f"rebalance:        {reb['splits']} splits, "
                f"{reb['merges']} merges, "
                f"{reb['docs_moved']} docs moved "
                f"(cutover {reb['cutover_seconds'] * 1e3:.1f} ms total), "
                f"routing epoch {reb['routing_epoch']}, "
                f"{len(reb['active_shards'])} active shards, "
                f"imbalance {reb['last_imbalance']:.2f}x"
            )
        batching = gw.get("batching", {})
        if batching.get("batch_frames") or batching.get(
            "single_read_frames"
        ):
            coalesced = ""
            if batching.get("coalesce"):
                coalesced = (
                    f", coalesced {batching['coalesce_hits']} hits / "
                    f"{batching['coalesce_misses']} misses "
                    f"({batching['coalesce_stale_skips']} stale skips)"
                )
            print(
                f"batching:         {batching['batched_reads']} reads in "
                f"{batching['batch_frames']} batch frames "
                f"({batching['frames_saved']} frames saved, "
                f"{batching['single_read_frames']} unbatched)"
                f"{coalesced}"
            )
    else:
        print(
            f"writer:           {service['publishes']} snapshots published "
            f"({service['cow_publishes']} cow, "
            f"{service['full_clone_publishes']} full, "
            f"{service['cow_fallbacks']} fallbacks), "
            f"{service['documents_ingested']} docs ingested, "
            f"{service['flush_recoveries']} crash recoveries"
        )
    vis = report.visibility
    if vis.get("count"):
        print(
            f"visibility:       {vis['tier']} tier, "
            f"p50 {vis['p50'] * 1e6:,.1f} us from ingest to first hit "
            f"({vis['count']} probes, {vis['misses']} misses)"
        )
    if report.memtier:
        mem = report.memtier
        merge = mem.get("merger")
        merged = (
            f", {merge['merges']} background merges"
            f" ({merge['errors']} errors)"
            if merge
            else ""
        )
        print(
            f"memory tier:      {mem['seals']} seals, "
            f"{mem['rebases']} rebases, "
            f"{mem['buffered_postings']} postings still buffered{merged}"
        )
    if config.verify or config.differential:
        print(f"divergences:      {report.divergences}")
    if args.json:
        report.write_json(args.json)
        print(f"wrote {args.json}")
    return 1 if report.divergences else 0


def cmd_check(args) -> int:
    from .core.invariants import check_index

    index = _load_index(args.index)
    report = check_index(index.index)
    print(f"invariant check of {args.index}: {report}")
    return 0 if report.ok else 1


def cmd_figure(args) -> int:
    from . import figures

    result = figures.regenerate(args.name)
    print(result.rendered)
    return 0


def cmd_stats(args) -> int:
    config = ExperimentConfig(
        workload=SyntheticNewsConfig(days=args.days, scale=args.scale)
    )
    print(Experiment(config).stats().as_table())
    return 0


# -- parser ------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Dual-structure inverted index (Tomasic, Garcia-Molina & "
            "Shoens, SIGMOD 1994)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_index = sub.add_parser("index", help="build an index from *.txt files")
    p_index.add_argument("directory")
    p_index.add_argument("-o", "--output", required=True)
    p_index.add_argument(
        "--policy", type=parse_policy, default=Policy.recommended_new()
    )
    p_index.add_argument("--positional", action="store_true")
    p_index.add_argument("--nbuckets", type=int, default=1024)
    p_index.add_argument("--bucket-size", type=int, default=1024)
    p_index.set_defaults(func=cmd_index)

    p_query = sub.add_parser("query", help="query a checkpointed index")
    p_query.add_argument("index")
    p_query.add_argument("query")
    p_query.add_argument("--phrase", action="store_true")
    p_query.add_argument("--near", type=int, default=None, metavar="K")
    p_query.set_defaults(func=cmd_query)

    def add_fault_args(p):
        p.add_argument(
            "--inject-faults",
            action="store_true",
            help="inject transient I/O faults into the exerciser "
            "(implies --exercise)",
        )
        p.add_argument("--fault-rate", type=float, default=0.05)
        p.add_argument("--fault-seed", type=int, default=0)

    p_exp = sub.add_parser(
        "experiment", help="run the evaluation pipeline for one or more policies"
    )
    p_exp.add_argument(
        "--policy",
        type=parse_policy,
        action="append",
        help="may repeat; default: recommended-new",
    )
    p_exp.add_argument("--days", type=int, default=73)
    p_exp.add_argument("--scale", type=float, default=1.0)
    p_exp.add_argument("--exercise", action="store_true")
    p_exp.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="fan policy-dependent stages out over N worker processes",
    )
    p_exp.add_argument(
        "--cache-dir",
        default=None,
        help="persist policy-independent artifacts here "
        "(default: $REPRO_CACHE_DIR if set)",
    )
    p_exp.add_argument(
        "--shards",
        type=int,
        default=1,
        help="document-hash shards; > 1 runs one pipeline per shard and "
        "aggregates (1 = the single-volume pipeline, unchanged)",
    )
    p_exp.add_argument(
        "--router-seed",
        type=int,
        default=0,
        help="seed perturbing the doc-id shard hash",
    )
    p_exp.add_argument(
        "--doc-skew",
        type=float,
        default=0.0,
        metavar="S",
        help="Zipf exponent skewing document placement across shards "
        "(shard 0 hottest; 0 = uniform hashing; with --shards > 1 the "
        "report adds max/mean doc and I/O imbalance)",
    )
    add_fault_args(p_exp)
    p_exp.set_defaults(func=cmd_experiment)

    p_sweep = sub.add_parser(
        "sweep", help="sweep the Table-2 policy space, optionally in parallel"
    )
    p_sweep.add_argument(
        "--policy",
        type=parse_policy,
        action="append",
        help="may repeat; default: the six Figure-8 policies",
    )
    p_sweep.add_argument("--jobs", type=int, default=1)
    p_sweep.add_argument("--exercise", action="store_true")
    p_sweep.add_argument("--days", type=int, default=73)
    p_sweep.add_argument("--scale", type=float, default=1.0)
    p_sweep.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the machine-readable sweep report here",
    )
    p_sweep.add_argument(
        "--cache-dir",
        default=None,
        help="persist policy-independent artifacts here "
        "(default: $REPRO_CACHE_DIR if set)",
    )
    p_sweep.add_argument(
        "--print-key",
        action="store_true",
        help="print the config fingerprint (CI cache key) and exit",
    )
    add_fault_args(p_sweep)
    p_sweep.set_defaults(func=cmd_sweep)

    p_serve = sub.add_parser(
        "serve-bench",
        help="benchmark snapshot-isolated concurrent query serving",
    )
    p_serve.add_argument("--readers", type=int, default=4)
    p_serve.add_argument("--cycles", type=int, default=20)
    p_serve.add_argument("--docs-per-batch", type=int, default=20)
    p_serve.add_argument("--vocabulary", type=int, default=120)
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument("--cache-capacity", type=int, default=256)
    p_serve.add_argument("--delete-every", type=int, default=0)
    p_serve.add_argument(
        "--publish-mode",
        choices=("clone", "cow"),
        default="cow",
        help="snapshot publication: full checkpoint clone, or "
        "incremental copy-on-write sharing untouched structure",
    )
    p_serve.add_argument(
        "--buffer-cache",
        type=int,
        default=128,
        metavar="BLOCKS",
        help="block budget of the shared decoded-chunk cache (0 disables)",
    )
    p_serve.add_argument(
        "--differential",
        action="store_true",
        help="after every publish, compare the served snapshot against "
        "a full-clone oracle over a probe query set",
    )
    p_serve.add_argument(
        "--pace",
        type=float,
        default=0.001,
        metavar="S",
        help="writer sleep between cycles so readers interleave",
    )
    p_serve.add_argument(
        "--shards",
        type=int,
        default=1,
        help="document-hash shards behind the service "
        "(1 = the single-volume path, unchanged)",
    )
    p_serve.add_argument(
        "--router-seed",
        type=int,
        default=0,
        help="seed perturbing the doc-id shard hash",
    )
    p_serve.add_argument(
        "--flush-jobs",
        type=int,
        default=1,
        help="parallel per-shard flush workers (1 = serial)",
    )
    p_serve.add_argument(
        "--flush-executor",
        choices=("thread", "process"),
        default="thread",
        help="executor for parallel per-shard flushes",
    )
    p_serve.add_argument(
        "--no-verify",
        action="store_true",
        help="skip answer verification against the reference model",
    )
    p_serve.add_argument(
        "--gateway",
        action="store_true",
        help="serve through one worker process per shard behind the "
        "asyncio scatter-gather gateway (implies --no-verify; "
        "correctness comes from --differential boundary probes)",
    )
    p_serve.add_argument(
        "--replicas",
        type=int,
        default=1,
        metavar="K",
        help="worker processes per shard (requires --gateway when > 1); "
        "reads load-balance across replicas and fail over when one "
        "dies or lags the published version vector",
    )
    p_serve.add_argument(
        "--rebuild-stagger",
        choices=("on", "off"),
        default="on",
        help="serialize grow_buckets rebuilds so at most one shard "
        "pays the rehash + full-clone publish spike per flush round "
        "(gateway only; 'off' lets every shard grow the round its "
        "occupancy trigger fires)",
    )
    p_serve.add_argument(
        "--grow-buckets",
        action="store_true",
        help="build the volumes with bucket-space growth enabled "
        "(paper §7's rebalancing strategy)",
    )
    p_serve.add_argument(
        "--growth-threshold",
        type=float,
        default=0.75,
        metavar="F",
        help="bucket occupancy that triggers a growth round",
    )
    p_serve.add_argument(
        "--read-tier",
        choices=("snapshot", "immediate"),
        default="snapshot",
        help="snapshot serves published boundaries only; immediate "
        "merges the in-memory write buffer so documents are queryable "
        "before any flush (implies --no-verify; use --differential "
        "for mid-buffer probes against the brute-force mirror)",
    )
    p_serve.add_argument(
        "--background-merge",
        action="store_true",
        help="drain the memory tier with a background merge thread "
        "instead of the writer's per-cycle flush "
        "(requires --read-tier immediate, in-process only)",
    )
    p_serve.add_argument(
        "--arrival",
        choices=("closed", "open"),
        default="closed",
        help="reader discipline: closed loop, or an open-loop Poisson "
        "schedule whose latencies include queue wait",
    )
    p_serve.add_argument(
        "--arrival-rate",
        type=float,
        default=500.0,
        metavar="QPS",
        help="open-loop offered arrival rate",
    )
    p_serve.add_argument(
        "--arrival-queries",
        type=int,
        default=2000,
        metavar="N",
        help="open-loop total scheduled arrivals",
    )
    p_serve.add_argument(
        "--queue-limit",
        type=int,
        default=256,
        metavar="N",
        help="gateway admission-control wait-queue bound",
    )
    p_serve.add_argument(
        "--shard-timeout",
        type=float,
        default=30.0,
        metavar="S",
        help="gateway per-shard query deadline",
    )
    p_serve.add_argument(
        "--batch-size",
        type=int,
        default=16,
        metavar="N",
        help="gateway read micro-batch cap (1 = unbatched wire protocol)",
    )
    p_serve.add_argument(
        "--batch-delay-us",
        type=int,
        default=250,
        metavar="US",
        help="ceiling of the adaptive batch-flush delay window",
    )
    p_serve.add_argument(
        "--coalesce",
        action="store_true",
        help="single-flight coalescing of identical concurrent queries",
    )
    p_serve.add_argument(
        "--doc-skew",
        type=float,
        default=0.0,
        metavar="S",
        help="Zipf exponent skewing document placement across shards: "
        "the writer pins explicit doc ids whose hash lands on a "
        "Zipf-drawn target shard (shard 0 hottest; 0 = off)",
    )
    p_serve.add_argument(
        "--rebalance",
        action="store_true",
        help="let the gateway split hot shards and merge cold ones "
        "online when live-doc imbalance exceeds --rebalance-threshold "
        "(requires --gateway; cutovers land at flush boundaries and "
        "the report grows a 'rebalance:' line)",
    )
    p_serve.add_argument(
        "--rebalance-threshold",
        type=float,
        default=1.5,
        metavar="X",
        help="max/mean live-doc imbalance that triggers a shard split",
    )
    p_serve.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the machine-readable serving report here",
    )
    add_fault_args(p_serve)
    p_serve.set_defaults(func=cmd_serve_bench)

    p_check = sub.add_parser(
        "check", help="verify the invariants of a checkpointed index"
    )
    p_check.add_argument("index")
    p_check.set_defaults(func=cmd_check)

    p_fig = sub.add_parser(
        "figure",
        help="regenerate one of the paper's tables/figures by id",
    )
    p_fig.add_argument(
        "name",
        choices=sorted(
            __import__("repro.figures", fromlist=["REGISTRY"]).REGISTRY
        ),
    )
    p_fig.set_defaults(func=cmd_figure)

    p_stats = sub.add_parser("stats", help="synthetic corpus statistics")
    p_stats.add_argument("--days", type=int, default=73)
    p_stats.add_argument("--scale", type=float, default=1.0)
    p_stats.set_defaults(func=cmd_stats)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
