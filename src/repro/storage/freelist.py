"""Free-space management for a single simulated disk.

The paper (Section 3, fourth issue) allocates chunks with a **first-fit**
scan of the free list from the beginning of the disk, and explicitly names
best-fit and buddy systems as alternatives it does not evaluate ("to keep
the space of possible solutions manageable"); the related-work section notes
that Cutting and Pedersen used a buddy system.  We implement first-fit as
the default and provide best-fit and a binary buddy allocator for the
ablation benchmark (``bench_ext_allocator``).

All allocators expose the same interface:

``allocate(nblocks) -> start | None``
    Return the start block of a free run of at least ``nblocks`` blocks and
    mark exactly ``nblocks`` of it allocated, or ``None`` when no run fits.

``free(start, nblocks)``
    Return a previously allocated run to free space.

``free_blocks`` / ``largest_free_run`` / ``fragmentation``
    Inspection helpers used by utilization metrics and tests.
"""

from __future__ import annotations

import bisect
from typing import Iterator


class FreeListError(Exception):
    """Raised on inconsistent free/allocate requests (double free, overlap)."""


class FirstFitFreeList:
    """First-fit free list over ``nblocks`` blocks.

    Free space is a sorted list of disjoint, non-adjacent ``(start, length)``
    intervals.  ``allocate`` scans from the beginning of the disk — the exact
    strategy the paper uses — and carves the request from the *front* of the
    first interval that fits.  ``free`` merges the returned run with its
    neighbours so the interval invariants always hold.
    """

    strategy = "first-fit"

    def __init__(self, nblocks: int) -> None:
        if nblocks <= 0:
            raise ValueError(f"nblocks must be > 0, got {nblocks}")
        self.nblocks = nblocks
        # Parallel arrays sorted by start; kept disjoint and non-adjacent.
        self._starts: list[int] = [0]
        self._lengths: list[int] = [nblocks]

    # -- allocation ------------------------------------------------------

    def _pick_interval(self, nblocks: int) -> int | None:
        """Index of the interval to allocate from, or None."""
        for i, length in enumerate(self._lengths):
            if length >= nblocks:
                return i
        return None

    def allocate(self, nblocks: int) -> int | None:
        """Allocate ``nblocks`` contiguous blocks; return start or None."""
        if nblocks <= 0:
            raise ValueError(f"nblocks must be > 0, got {nblocks}")
        i = self._pick_interval(nblocks)
        if i is None:
            return None
        start = self._starts[i]
        if self._lengths[i] == nblocks:
            del self._starts[i]
            del self._lengths[i]
        else:
            self._starts[i] += nblocks
            self._lengths[i] -= nblocks
        return start

    def free(self, start: int, nblocks: int) -> None:
        """Return ``[start, start+nblocks)`` to free space, merging runs."""
        if nblocks <= 0:
            raise ValueError(f"nblocks must be > 0, got {nblocks}")
        if start < 0 or start + nblocks > self.nblocks:
            raise FreeListError(
                f"free of [{start}, {start + nblocks}) outside disk of "
                f"{self.nblocks} blocks"
            )
        i = bisect.bisect_left(self._starts, start)
        # Overlap checks against neighbours on either side.
        if i < len(self._starts) and start + nblocks > self._starts[i]:
            raise FreeListError(
                f"double free: [{start}, {start + nblocks}) overlaps free run "
                f"at {self._starts[i]}"
            )
        if i > 0 and self._starts[i - 1] + self._lengths[i - 1] > start:
            raise FreeListError(
                f"double free: [{start}, {start + nblocks}) overlaps free run "
                f"at {self._starts[i - 1]}"
            )
        merge_prev = i > 0 and self._starts[i - 1] + self._lengths[i - 1] == start
        merge_next = i < len(self._starts) and start + nblocks == self._starts[i]
        if merge_prev and merge_next:
            self._lengths[i - 1] += nblocks + self._lengths[i]
            del self._starts[i]
            del self._lengths[i]
        elif merge_prev:
            self._lengths[i - 1] += nblocks
        elif merge_next:
            self._starts[i] = start
            self._lengths[i] += nblocks
        else:
            self._starts.insert(i, start)
            self._lengths.insert(i, nblocks)

    # -- inspection ------------------------------------------------------

    @property
    def free_blocks(self) -> int:
        """Total free blocks on the disk."""
        return sum(self._lengths)

    @property
    def allocated_blocks(self) -> int:
        """Total allocated blocks on the disk."""
        return self.nblocks - self.free_blocks

    @property
    def largest_free_run(self) -> int:
        """Length of the largest contiguous free run (0 when full)."""
        return max(self._lengths, default=0)

    def fragmentation(self) -> float:
        """External fragmentation in [0, 1].

        Defined as ``1 - largest_run / free_blocks``; 0 when all free space
        is one run (or the disk is full), approaching 1 when free space is
        shattered into many small runs.
        """
        free = self.free_blocks
        if free == 0:
            return 0.0
        return 1.0 - self.largest_free_run / free

    def intervals(self) -> Iterator[tuple[int, int]]:
        """Yield ``(start, length)`` free intervals in address order."""
        yield from zip(self._starts, self._lengths)

    def check_invariants(self) -> None:
        """Assert the interval invariants; used by property tests."""
        prev_end = -1
        for start, length in self.intervals():
            if length <= 0:
                raise AssertionError("empty interval on free list")
            if start <= prev_end:
                raise AssertionError("intervals overlap or touch")
            if start + length > self.nblocks:
                raise AssertionError("interval extends past end of disk")
            prev_end = start + length


class BestFitFreeList(FirstFitFreeList):
    """Best-fit variant: allocate from the smallest run that fits.

    Ties break toward the lowest address, matching the deterministic
    behaviour tests expect.
    """

    strategy = "best-fit"

    def _pick_interval(self, nblocks: int) -> int | None:
        best = None
        best_len = None
        for i, length in enumerate(self._lengths):
            if length >= nblocks and (best_len is None or length < best_len):
                best, best_len = i, length
        return best


class BuddyFreeList:
    """Binary buddy allocator (the Cutting–Pedersen related-work scheme).

    Requests are rounded up to the next power of two and satisfied by
    recursively splitting larger free blocks; frees coalesce with the
    buddy block when it is also free.  Space utilization is worse than the
    fit allocators (internal rounding waste) but allocate/free are O(log n)
    and fragmentation is bounded — the trade-off the paper's related-work
    section flags as worth studying.
    """

    strategy = "buddy"

    def __init__(self, nblocks: int) -> None:
        if nblocks <= 0:
            raise ValueError(f"nblocks must be > 0, got {nblocks}")
        self.nblocks = nblocks
        # Capacity is the largest power of two <= nblocks; the remainder is
        # permanently unavailable (documented buddy-system cost).
        self._order_max = nblocks.bit_length() - 1
        if (1 << self._order_max) > nblocks:
            self._order_max -= 1
        self.capacity = 1 << self._order_max
        # free lists per order: order k holds blocks of 2**k blocks
        self._free: list[set[int]] = [set() for _ in range(self._order_max + 1)]
        self._free[self._order_max].add(0)
        self._allocated: dict[int, int] = {}  # start -> order

    @staticmethod
    def _order_for(nblocks: int) -> int:
        return max(0, (nblocks - 1).bit_length())

    def allocate(self, nblocks: int) -> int | None:
        if nblocks <= 0:
            raise ValueError(f"nblocks must be > 0, got {nblocks}")
        order = self._order_for(nblocks)
        if order > self._order_max:
            return None
        # Find the smallest order >= request with a free block.
        k = order
        while k <= self._order_max and not self._free[k]:
            k += 1
        if k > self._order_max:
            return None
        start = min(self._free[k])
        self._free[k].remove(start)
        # Split down to the requested order.
        while k > order:
            k -= 1
            buddy = start + (1 << k)
            self._free[k].add(buddy)
        self._allocated[start] = order
        return start

    def free(self, start: int, nblocks: int) -> None:
        order = self._allocated.pop(start, None)
        if order is None:
            raise FreeListError(f"free of unallocated block at {start}")
        expected = self._order_for(nblocks)
        if expected != order:
            raise FreeListError(
                f"free size mismatch at {start}: allocated order {order}, "
                f"freed order {expected}"
            )
        # Coalesce with buddies while possible.
        while order < self._order_max:
            buddy = start ^ (1 << order)
            if buddy not in self._free[order]:
                break
            self._free[order].remove(buddy)
            start = min(start, buddy)
            order += 1
        self._free[order].add(start)

    @property
    def free_blocks(self) -> int:
        return sum(len(s) << k for k, s in enumerate(self._free))

    @property
    def allocated_blocks(self) -> int:
        return self.capacity - self.free_blocks

    @property
    def largest_free_run(self) -> int:
        for k in range(self._order_max, -1, -1):
            if self._free[k]:
                return 1 << k
        return 0

    def fragmentation(self) -> float:
        free = self.free_blocks
        if free == 0:
            return 0.0
        return 1.0 - self.largest_free_run / free

    def check_invariants(self) -> None:
        seen: set[int] = set()
        for k, starts in enumerate(self._free):
            for start in starts:
                for b in range(start, start + (1 << k)):
                    if b in seen:
                        raise AssertionError("overlapping buddy free blocks")
                    seen.add(b)


ALLOCATORS = {
    "first-fit": FirstFitFreeList,
    "best-fit": BestFitFreeList,
    "buddy": BuddyFreeList,
}


def make_freelist(strategy: str, nblocks: int):
    """Construct a free list by strategy name (``first-fit`` default)."""
    try:
        cls = ALLOCATORS[strategy]
    except KeyError:
        raise ValueError(
            f"unknown allocator {strategy!r}; choose from {sorted(ALLOCATORS)}"
        ) from None
    return cls(nblocks)
