"""Shared read-block buffer cache for the serving path.

Every long-list read pays the simulated seek + transfer *and* a decode
of the stored block payloads.  Across reader threads the hot head of the
Zipf-skewed query mix re-reads the same chunks over and over, so the
serving layer attaches a small LRU cache of decoded chunk payloads keyed
by ``(disk, start_block)`` to each published snapshot.

Correctness hinges on two properties:

* **Accounting is unchanged.**  The cache is consulted *after* the
  read-op and trace accounting in ``LongListManager`` — a hit skips only
  the block-store access and the decode, never the Figure-10 read-op
  unit, so cached and uncached serving report identical costs.
* **Dirty blocks never survive a publish.**  A copy-on-write publish
  derives the next snapshot's cache with ``successor``, which drops any
  entry whose block span intersects the batch's dirty blocks; a full
  clone publish starts from an empty cache.  Entries additionally carry
  the chunk's ``npostings`` as a self-check against stale reuse.

Capacity is a block budget, not an entry count, so long chunks displace
proportionally more of the cache.  Hit/miss/eviction counts aggregate
into a shared :class:`repro.pipeline.profiling.HitMissCounters` owned by
the service, surviving across snapshot generations.
"""

from __future__ import annotations

import threading
from collections import OrderedDict


class BlockBufferCache:
    """LRU over decoded long-list chunk payloads, budgeted in blocks."""

    def __init__(self, capacity_blocks: int, counters=None) -> None:
        if capacity_blocks < 0:
            raise ValueError("capacity_blocks must be >= 0")
        self.capacity_blocks = capacity_blocks
        self.counters = counters
        self._lock = threading.Lock()
        # (disk, start) -> (span_blocks, npostings, decoded payload)
        self._entries: OrderedDict[tuple[int, int], tuple] = OrderedDict()
        self._used_blocks = 0

    def get(self, disk: int, start: int, npostings: int):
        """Return the cached decoded payload, or None.

        The payload object is shared between the cache and all callers;
        it must be treated as immutable (callers copy/extend into their
        own accumulators).
        """
        key = (disk, start)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[1] == npostings:
                self._entries.move_to_end(key)
                if self.counters is not None:
                    self.counters.note_hit()
                return entry[2]
            if entry is not None:
                # Geometry changed under the same address: stale, drop.
                self._used_blocks -= entry[0]
                del self._entries[key]
            if self.counters is not None:
                self.counters.note_miss()
            return None

    def put(
        self, disk: int, start: int, span_blocks: int, npostings: int, payload
    ) -> None:
        if self.capacity_blocks <= 0 or span_blocks > self.capacity_blocks:
            return
        key = (disk, start)
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._used_blocks -= old[0]
            self._entries[key] = (span_blocks, npostings, payload)
            self._used_blocks += span_blocks
            while self._used_blocks > self.capacity_blocks:
                _, (spilled, _, _) = self._entries.popitem(last=False)
                self._used_blocks -= spilled
                if self.counters is not None:
                    self.counters.note_eviction()

    def successor(
        self, dirty_blocks: set[tuple[int, int]]
    ) -> "BlockBufferCache":
        """Carry clean entries into the next snapshot's cache.

        Drops every entry whose block span touches ``dirty_blocks`` —
        the journal records writes *and* frees, so both rewritten and
        relocated chunks are purged.
        """
        fresh = BlockBufferCache(self.capacity_blocks, self.counters)
        with self._lock:
            for (disk, start), entry in self._entries.items():
                span = entry[0]
                if any(
                    (disk, block) in dirty_blocks
                    for block in range(start, start + span)
                ):
                    if self.counters is not None:
                        self.counters.note_invalidated()
                    continue
                fresh._entries[(disk, start)] = entry
                fresh._used_blocks += span
        return fresh

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def used_blocks(self) -> int:
        with self._lock:
            return self._used_blocks
