"""Block-level primitives for the simulated disk subsystem.

The paper (Section 3) distinguishes three granularities of disk space:

* **block** — the unit of disk transfer (``BlockSize`` bytes, holding up to
  ``BlockPosting`` postings of a single word's long list).
* **extent** — a *fixed-size* contiguous run of blocks, used by the ``fill``
  style (global parameter ``e``).
* **chunk** — a *variable-size* contiguous run of blocks.  A long inverted
  list is a sequence of one or more chunks, possibly on different disks; the
  directory records the chunk pointers.

This module defines the value objects shared by the allocator, the long-list
manager, and the trace machinery.  They deliberately contain no behaviour
beyond simple derived quantities so that every policy decision lives in
:mod:`repro.core.longlists` where the paper describes it.
"""

from __future__ import annotations

from dataclasses import dataclass


def blocks_for_postings(npostings: int, block_postings: int) -> int:
    """Number of blocks needed to hold ``npostings`` postings.

    A request for zero postings still occupies one block: the paper's
    ``WRITE`` primitive always allocates whole blocks and a chunk is never
    empty on disk.

    >>> blocks_for_postings(1, 256)
    1
    >>> blocks_for_postings(256, 256)
    1
    >>> blocks_for_postings(257, 256)
    2
    """
    if npostings < 0:
        raise ValueError(f"npostings must be >= 0, got {npostings}")
    if block_postings <= 0:
        raise ValueError(f"block_postings must be > 0, got {block_postings}")
    if npostings == 0:
        return 1
    return -(-npostings // block_postings)


@dataclass(frozen=True)
class BlockRange:
    """A contiguous run of blocks on a single disk.

    ``start`` is a block address local to the disk; ``nblocks`` is the run
    length.  Immutable so ranges can be used as set/dict members when the
    exerciser coalesces requests.
    """

    disk: int
    start: int
    nblocks: int

    def __post_init__(self) -> None:
        if self.disk < 0:
            raise ValueError(f"disk must be >= 0, got {self.disk}")
        if self.start < 0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if self.nblocks <= 0:
            raise ValueError(f"nblocks must be > 0, got {self.nblocks}")

    @property
    def end(self) -> int:
        """One past the last block of the range."""
        return self.start + self.nblocks

    def adjacent_to(self, other: "BlockRange") -> bool:
        """True when ``other`` begins exactly where this range ends."""
        return self.disk == other.disk and self.end == other.start

    def overlaps(self, other: "BlockRange") -> bool:
        """True when the two ranges share at least one block."""
        return (
            self.disk == other.disk
            and self.start < other.end
            and other.start < self.end
        )


@dataclass
class Chunk:
    """One contiguous piece of a long inverted list.

    A chunk tracks how many postings it currently holds (``npostings``)
    against its physical capacity (``nblocks * block_postings``); the
    difference is the slack ``z`` the paper's in-place update tests against.
    """

    disk: int
    start: int
    nblocks: int
    npostings: int = 0
    #: Reserved-postings watermark: capacity the allocation strategy set
    #: aside on purpose (informational; slack is computed from capacity).
    reserved: int = 0

    def __post_init__(self) -> None:
        if self.nblocks <= 0:
            raise ValueError(f"nblocks must be > 0, got {self.nblocks}")
        if self.npostings < 0:
            raise ValueError(f"npostings must be >= 0, got {self.npostings}")

    def capacity(self, block_postings: int) -> int:
        """Maximum postings the chunk can hold."""
        return self.nblocks * block_postings

    def slack(self, block_postings: int) -> int:
        """Free posting slots at the end of the chunk (the paper's ``z``)."""
        return self.capacity(block_postings) - self.npostings

    def block_range(self) -> BlockRange:
        """The physical blocks backing this chunk."""
        return BlockRange(self.disk, self.start, self.nblocks)

    def last_block(self) -> BlockRange:
        """The final block of the chunk — what UPDATE reads before an
        in-place append."""
        return BlockRange(self.disk, self.start + self.nblocks - 1, 1)

    def blocks_touched_by_append(
        self, npostings: int, block_postings: int
    ) -> BlockRange:
        """Blocks an in-place append of ``npostings`` postings writes.

        The append begins in the (possibly partially filled) block that
        currently holds the tail of the list and extends into the reserved
        blocks.  Used by UPDATE to emit a faithful write trace.
        """
        if npostings <= 0:
            raise ValueError("append of <= 0 postings")
        if npostings > self.slack(block_postings):
            raise ValueError(
                f"append of {npostings} does not fit in slack "
                f"{self.slack(block_postings)}"
            )
        first = self.start + self.npostings // block_postings
        last = self.start + (self.npostings + npostings - 1) // block_postings
        return BlockRange(self.disk, first, last - first + 1)
