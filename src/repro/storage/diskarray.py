"""Multi-disk manager with the paper's round-robin assignment policy.

Paper Section 3, second issue: when a new word or a new chunk is allocated,
the disk chosen is ``i + 1 mod n`` where ``i`` was the last disk chosen.
(The paper explicitly declines to study most-empty / fewest-chunks
strategies; we implement round-robin as the default and keep the selection
pluggable for completeness.)

If the round-robin disk cannot satisfy a request, we probe the remaining
disks in order before declaring the array full.  The paper does not specify
overflow behaviour — its experiments either fit or were reported as
infeasible (the ``fill 0`` policy) — so probing is the conservative choice
that lets us reproduce both outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass

from .block import Chunk
from .disk import DiskFullError, SimulatedDisk
from .profiles import DiskProfile


@dataclass(frozen=True)
class DiskArrayConfig:
    """Configuration of the simulated disk array.

    ``nblocks_override`` replaces the profile capacity; the counting stages
    of the pipeline use a large virtual capacity (the paper's ComputeDisks
    generated traces even for policies that later failed to fit real disks).
    """

    ndisks: int = 4
    profile: DiskProfile | None = None
    allocator: str = "first-fit"
    store_contents: bool = False
    nblocks_override: int | None = None

    def __post_init__(self) -> None:
        if self.ndisks <= 0:
            raise ValueError("ndisks must be > 0")
        if self.nblocks_override is not None and self.nblocks_override <= 0:
            raise ValueError("nblocks_override must be > 0")


class DiskArray:
    """A bank of :class:`SimulatedDisk` with round-robin chunk placement."""

    def __init__(self, config: DiskArrayConfig) -> None:
        from .profiles import SEAGATE_SCSI_1994

        profile = config.profile or SEAGATE_SCSI_1994
        if config.nblocks_override is not None:
            profile = profile.with_capacity(config.nblocks_override)
        self.config = config
        self.profile = profile
        self.disks = [
            SimulatedDisk(
                profile,
                allocator=config.allocator,
                store_contents=config.store_contents,
            )
            for _ in range(config.ndisks)
        ]
        self._next_disk = 0

    @property
    def ndisks(self) -> int:
        return len(self.disks)

    def next_disk(self) -> int:
        """Advance the round-robin pointer and return the chosen disk."""
        disk = self._next_disk
        self._next_disk = (self._next_disk + 1) % self.ndisks
        return disk

    def allocate_chunk(self, nblocks: int) -> Chunk:
        """Allocate ``nblocks`` contiguous blocks on the round-robin disk.

        Falls back to probing the other disks in order; raises
        :class:`DiskFullError` when no disk has a large enough free run.
        The returned chunk has ``npostings == 0``; the caller fills it.
        """
        first = self.next_disk()
        for offset in range(self.ndisks):
            disk_id = (first + offset) % self.ndisks
            start = self.disks[disk_id].allocate(nblocks)
            if start is not None:
                return Chunk(disk=disk_id, start=start, nblocks=nblocks)
        raise DiskFullError(
            f"no disk can supply {nblocks} contiguous blocks "
            f"(free: {[d.free_blocks for d in self.disks]})"
        )

    def allocate_on(self, disk_id: int, nblocks: int) -> Chunk | None:
        """Allocate on a specific disk (bucket/directory flushes stripe
        explicitly); returns None when it does not fit there."""
        start = self.disks[disk_id].allocate(nblocks)
        if start is None:
            return None
        return Chunk(disk=disk_id, start=start, nblocks=nblocks)

    def free_chunk(self, chunk: Chunk) -> None:
        """Return a chunk's blocks to free space."""
        self.disks[chunk.disk].free(chunk.start, chunk.nblocks)

    # -- statistics --------------------------------------------------------

    @property
    def total_blocks(self) -> int:
        return sum(d.profile.nblocks for d in self.disks)

    @property
    def free_blocks(self) -> int:
        return sum(d.free_blocks for d in self.disks)

    @property
    def allocated_blocks(self) -> int:
        return sum(d.allocated_blocks for d in self.disks)

    def utilization(self) -> float:
        """Fraction of array capacity currently allocated."""
        return self.allocated_blocks / self.total_blocks

    def per_disk_allocated(self) -> list[int]:
        return [d.allocated_blocks for d in self.disks]
