"""Disk substrate: blocks, free lists, simulated disks, traces, exerciser.

This subpackage stands in for the raw SCSI disks of the paper's testbed.
See DESIGN.md ("Substitutions") for how the timing model preserves the
behaviours the paper's evaluation depends on.
"""

from .block import BlockRange, Chunk, blocks_for_postings
from .blockmap import ABSENT, LayeredBlocks
from .btree import BTree, BTreeConfig
from .buffercache import BlockBufferCache
from .disk import DiskCounters, DiskFullError, SimulatedDisk
from .diskarray import DiskArray, DiskArrayConfig
from .exerciser import BatchTiming, DiskExerciser, ExerciseResult
from .faults import (
    FaultPlan,
    FaultyDisk,
    FaultyDiskArray,
    InjectedCrash,
    TransientIOError,
    crash_point,
    injected,
    install,
    register_crash_point,
    registered_crash_points,
    uninstall,
)
from .freelist import (
    ALLOCATORS,
    BestFitFreeList,
    BuddyFreeList,
    FirstFitFreeList,
    FreeListError,
    make_freelist,
)
from .iotrace import IOTrace, OpKind, Target, TraceOp
from .profiles import (
    FAST_SCSI_1996,
    MODERN_HDD,
    OPTICAL_1994,
    PROFILES,
    SEAGATE_SCSI_1994,
    DiskProfile,
)

__all__ = [
    "ABSENT",
    "ALLOCATORS",
    "BTree",
    "BTreeConfig",
    "BatchTiming",
    "BestFitFreeList",
    "BlockBufferCache",
    "BlockRange",
    "LayeredBlocks",
    "BuddyFreeList",
    "Chunk",
    "DiskArray",
    "DiskArrayConfig",
    "DiskCounters",
    "DiskExerciser",
    "DiskFullError",
    "DiskProfile",
    "ExerciseResult",
    "FAST_SCSI_1996",
    "FaultPlan",
    "FaultyDisk",
    "FaultyDiskArray",
    "FirstFitFreeList",
    "FreeListError",
    "IOTrace",
    "InjectedCrash",
    "MODERN_HDD",
    "OPTICAL_1994",
    "OpKind",
    "PROFILES",
    "SEAGATE_SCSI_1994",
    "SimulatedDisk",
    "Target",
    "TraceOp",
    "TransientIOError",
    "blocks_for_postings",
    "crash_point",
    "injected",
    "install",
    "make_freelist",
    "register_crash_point",
    "registered_crash_points",
    "uninstall",
]
