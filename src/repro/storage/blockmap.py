"""Layered copy-on-write view of a disk's stored-block map.

A full checkpoint clone materializes every block into a fresh dict.  The
incremental publisher instead stacks a small *overlay* — just the blocks
the batch wrote or freed — on top of the previous snapshot's (immutable)
map.  Readers resolve a block by walking overlays newest-first; a freed
block is masked by the ``ABSENT`` sentinel so the stale content below it
can never resurface.

The layers are immutable by protocol: the writer's map is always a plain
dict, and a published snapshot's map is never mutated (enforced in debug
mode by the freeze barrier in ``core.invariants``), so overlay stacking
is safe under concurrent readers without locks.

To keep lookup cost bounded as snapshots chain, ``over`` compacts: once
the stack exceeds ``MAX_LAYERS`` the overlays are merged into one, and
once the merged overlay rivals half the base it is folded into a fresh
base dict.  Both merges copy only overlay entries (plus one base copy
amortized over at least base/2 dirtied blocks), preserving the O(batch)
publish bound.
"""

from __future__ import annotations

from typing import Iterator


class _Absent:
    """Sentinel masking a freed block in an overlay."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<ABSENT>"


ABSENT = _Absent()
_MISSING = object()

#: Overlay stack depth that triggers an overlay merge.
MAX_LAYERS = 16


class LayeredBlocks:
    """Immutable stack of block overlays over a base ``{block: bytes}``.

    Implements the read-side mapping surface the rest of the system uses
    on ``SimulatedDisk._blocks``: ``get``, ``__getitem__``,
    ``__contains__``, ``items``, ``keys``, ``__iter__``, ``__len__``.
    Iteration and ``len`` materialize a merged dict lazily (O(index)) —
    they only serve checkpointing and diagnostics, never the query path,
    which resolves single blocks through ``get``.
    """

    __slots__ = ("_layers", "_merged")

    def __init__(self, layers: list[dict]) -> None:
        # ``layers`` is newest-first; the last element is the base map.
        self._layers = layers
        self._merged: dict | None = None

    @classmethod
    def over(cls, base, overlay: dict) -> "LayeredBlocks":
        """Stack ``overlay`` (bytes or ABSENT values) over ``base``.

        ``base`` may be a plain dict (the first incremental publish over
        a full clone) or another ``LayeredBlocks`` (a snapshot chain).
        Neither is mutated; compaction builds fresh dicts.
        """
        if isinstance(base, LayeredBlocks):
            layers = [overlay, *base._layers]
        else:
            layers = [overlay, base]
        if len(layers) > MAX_LAYERS:
            layers = cls._compact(layers)
        return cls(layers)

    @staticmethod
    def _compact(layers: list[dict]) -> list[dict]:
        base = layers[-1]
        merged: dict = {}
        # Oldest overlay first so newer entries win.
        for overlay in reversed(layers[:-1]):
            merged.update(overlay)
        if len(merged) * 2 >= len(base):
            # The dirty volume rivals the base: fold into a fresh base.
            folded = dict(base)
            for block, payload in merged.items():
                if payload is ABSENT:
                    folded.pop(block, None)
                else:
                    folded[block] = payload
            return [folded]
        return [merged, base]

    # ------------------------------------------------------------------
    # Single-block resolution (query path)
    # ------------------------------------------------------------------
    def get(self, block, default=None):
        for layer in self._layers:
            payload = layer.get(block, _MISSING)
            if payload is _MISSING:
                continue
            if payload is ABSENT:
                return default
            return payload
        return default

    def __getitem__(self, block):
        payload = self.get(block, _MISSING)
        if payload is _MISSING:
            raise KeyError(block)
        return payload

    def __contains__(self, block) -> bool:
        return self.get(block, _MISSING) is not _MISSING

    # ------------------------------------------------------------------
    # Whole-map views (checkpoint / diagnostics only)
    # ------------------------------------------------------------------
    def _materialize(self) -> dict:
        merged = self._merged
        if merged is None:
            merged = dict(self._layers[-1])
            for overlay in reversed(self._layers[:-1]):
                for block, payload in overlay.items():
                    if payload is ABSENT:
                        merged.pop(block, None)
                    else:
                        merged[block] = payload
            self._merged = merged  # idempotent; safe under racing readers
        return merged

    def items(self):
        return self._materialize().items()

    def keys(self):
        return self._materialize().keys()

    def __iter__(self) -> Iterator:
        return iter(self._materialize())

    def __len__(self) -> int:
        return len(self._materialize())

    @property
    def depth(self) -> int:
        """Number of stacked layers, base included (tests/diagnostics)."""
        return len(self._layers)
