"""Fault injection for the storage substrate and the index update paths.

The paper assumes reliable hardware but leans on a recovery story: shadow
flushes and the RELEASE list mean "the incremental update of the index can
be restarted if it is aborted" (§1, §3).  This module supplies the machinery
to *exercise* that claim instead of trusting it:

* :class:`FaultPlan` — a seeded schedule of injected failures.  It can
  crash on the Nth disk read/write/allocate/free, crash when execution
  reaches a *named crash point* (see below), tear a write (persist only a
  prefix of the block payloads before dying), and inject transient I/O
  errors that succeed on retry.
* :class:`FaultyDisk` / :class:`FaultyDiskArray` — drop-in subclasses of
  :class:`~repro.storage.disk.SimulatedDisk` and
  :class:`~repro.storage.diskarray.DiskArray` that consult the plan on
  every operation.
* **Named crash points** — modules on the update path (``core/flush.py``,
  ``core/longlists.py``, ``core/checkpoint.py``, ``core/index.py``) register
  points at import time and call :func:`crash_point` when execution passes
  them.  With no plan installed the call is a dict lookup and a ``None``
  check — cheap enough to leave in production paths.  Tests install a plan
  (:func:`install` / :func:`injected`), pick a point, and get a
  deterministic :class:`InjectedCrash` mid-update.

The crash-point registry is what makes the recovery test *exhaustive*:
``registered_crash_points()`` enumerates every place the implementation can
die, so the sweep in ``tests/core/test_crash_recovery.py`` cannot silently
miss a new one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .disk import SimulatedDisk
from .diskarray import DiskArray


class InjectedCrash(Exception):
    """A deliberate, planned crash (process death in the fault model)."""


class TransientIOError(Exception):
    """A retryable I/O failure (e.g. a recoverable bus timeout)."""


# -- crash-point registry ------------------------------------------------------

#: name -> human description of every compiled-in crash point.
CRASH_POINTS: dict[str, str] = {}

_ACTIVE: "FaultPlan | None" = None


def register_crash_point(name: str, description: str) -> str:
    """Register a named crash point (module import time); returns ``name``.

    Re-registration with the same description is idempotent so modules can
    be reloaded; conflicting descriptions are a programming error.
    """
    existing = CRASH_POINTS.get(name)
    if existing is not None and existing != description:
        raise ValueError(f"crash point {name!r} already registered")
    CRASH_POINTS[name] = description
    return name


def registered_crash_points() -> list[str]:
    """All registered crash-point names, sorted (sweep-test enumeration)."""
    return sorted(CRASH_POINTS)


def crash_point(name: str) -> None:
    """Mark that execution reached ``name``; crashes when a plan says so."""
    if _ACTIVE is not None:
        _ACTIVE.reach(name)


def install(plan: "FaultPlan") -> None:
    """Make ``plan`` the active plan consulted by :func:`crash_point`."""
    global _ACTIVE
    _ACTIVE = plan


def uninstall() -> None:
    """Deactivate the current plan (crash points become no-ops again)."""
    global _ACTIVE
    _ACTIVE = None


class injected:
    """Context manager: install a plan for the duration of a block."""

    def __init__(self, plan: "FaultPlan") -> None:
        self.plan = plan

    def __enter__(self) -> "FaultPlan":
        install(self.plan)
        return self.plan

    def __exit__(self, *exc_info) -> None:
        uninstall()


# -- the plan ------------------------------------------------------------------


@dataclass
class FaultPlan:
    """A deterministic, seeded schedule of injected failures.

    Triggers are 1-based ("crash on the Nth write"); ``None`` disables a
    trigger.  ``crash_at`` names a registered crash point and fires on its
    ``crash_at_hit``-th arrival, so a point inside a loop can be crashed at
    any iteration.  All counters survive across batches — the plan describes
    one process lifetime.
    """

    seed: int = 0
    crash_at: str | None = None
    crash_at_hit: int = 1
    crash_on_read: int | None = None
    crash_on_write: int | None = None
    crash_on_alloc: int | None = None
    crash_on_free: int | None = None
    #: When a write crash fires, persist a random prefix of the payload
    #: blocks first — the torn-write failure mode of real disks.
    torn_writes: bool = False
    #: Probability that a disk service op fails transiently (retryable).
    transient_rate: float = 0.0
    #: A single op never fails transiently more than this many times, so
    #: bounded retry always converges.
    max_transient_per_op: int = 2

    # observability (mutated during the run)
    fired: str | None = field(default=None, init=False)
    reads: int = field(default=0, init=False)
    writes: int = field(default=0, init=False)
    allocs: int = field(default=0, init=False)
    frees: int = field(default=0, init=False)
    transients_injected: int = field(default=0, init=False)
    point_hits: dict[str, int] = field(default_factory=dict, init=False)
    _transient_counts: dict[tuple, int] = field(
        default_factory=dict, init=False, repr=False
    )
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.crash_at is not None and self.crash_at not in CRASH_POINTS:
            raise ValueError(
                f"unknown crash point {self.crash_at!r}; registered: "
                f"{registered_crash_points()}"
            )
        if not 0.0 <= self.transient_rate <= 1.0:
            raise ValueError("transient_rate must be in [0, 1]")
        self._rng = random.Random(self.seed)

    # -- triggers ----------------------------------------------------------

    def _crash(self, what: str) -> None:
        self.fired = what
        raise InjectedCrash(what)

    def reach(self, name: str) -> None:
        """Called by :func:`crash_point` for every named point passed."""
        if name not in CRASH_POINTS:
            raise ValueError(f"unregistered crash point {name!r}")
        hits = self.point_hits.get(name, 0) + 1
        self.point_hits[name] = hits
        if self.crash_at == name and hits == self.crash_at_hit:
            self._crash(f"crash point {name} (hit {hits})")

    def note_read(self) -> None:
        self.reads += 1
        if self.crash_on_read is not None and self.reads == self.crash_on_read:
            self._crash(f"read #{self.reads}")

    def note_write(self) -> None:
        self.writes += 1
        if (
            self.crash_on_write is not None
            and self.writes == self.crash_on_write
        ):
            self._crash(f"write #{self.writes}")

    def note_alloc(self) -> None:
        self.allocs += 1
        if (
            self.crash_on_alloc is not None
            and self.allocs == self.crash_on_alloc
        ):
            self._crash(f"alloc #{self.allocs}")

    def note_free(self) -> None:
        self.frees += 1
        if self.crash_on_free is not None and self.frees == self.crash_on_free:
            self._crash(f"free #{self.frees}")

    def torn_prefix(self, nblocks: int) -> int:
        """How many payload blocks a torn write persists before dying."""
        if not self.torn_writes or nblocks <= 0:
            return 0
        return self._rng.randrange(nblocks)

    def transient_failure(self, key: tuple) -> bool:
        """Whether the op identified by ``key`` fails transiently now.

        ``key`` must be stable across retries of the same op; the per-op
        counter caps consecutive failures at ``max_transient_per_op``.
        """
        if self.transient_rate <= 0.0:
            return False
        failures = self._transient_counts.get(key, 0)
        if failures >= self.max_transient_per_op:
            return False
        if self._rng.random() < self.transient_rate:
            self._transient_counts[key] = failures + 1
            self.transients_injected += 1
            return True
        return False


# -- faulty storage ------------------------------------------------------------


class FaultyDisk(SimulatedDisk):
    """A :class:`SimulatedDisk` whose every operation consults a plan.

    Implemented as a subclass so the rest of the system (free lists, block
    payloads, counters, head position) behaves identically when no trigger
    fires — the faulty path differs from the real one only at the injected
    failure itself.
    """

    def __init__(
        self,
        profile,
        allocator: str = "first-fit",
        store_contents: bool = False,
        plan: FaultPlan | None = None,
        fault_id: int = 0,
    ) -> None:
        super().__init__(
            profile, allocator=allocator, store_contents=store_contents
        )
        self.plan = plan or FaultPlan()
        self.fault_id = fault_id
        self._op_seq = 0

    # space ---------------------------------------------------------------

    def allocate(self, nblocks: int):
        self.plan.note_alloc()
        return super().allocate(nblocks)

    def free(self, start: int, nblocks: int) -> None:
        self.plan.note_free()
        super().free(start, nblocks)

    # timing --------------------------------------------------------------

    def service(self, start: int, nblocks: int, is_write: bool) -> float:
        key = (self.fault_id, self._op_seq)
        if self.plan.transient_failure(key):
            raise TransientIOError(
                f"disk {self.fault_id}: transient failure servicing "
                f"[{start}, {start + nblocks})"
            )
        self._op_seq += 1
        return super().service(start, nblocks, is_write)

    # contents ------------------------------------------------------------

    def write_blocks(self, start: int, payloads: list[bytes]) -> None:
        try:
            self.plan.note_write()
        except InjectedCrash:
            # Torn write: a prefix of the blocks reaches the platter, the
            # rest never does — then the process dies.
            persisted = self.plan.torn_prefix(len(payloads))
            if persisted:
                super().write_blocks(start, payloads[:persisted])
            raise
        super().write_blocks(start, payloads)

    def read_blocks(self, start: int, nblocks: int) -> list[bytes]:
        self.plan.note_read()
        return super().read_blocks(start, nblocks)


class FaultyDiskArray(DiskArray):
    """A :class:`DiskArray` whose member disks share one fault plan."""

    def __init__(self, config, plan: FaultPlan) -> None:
        super().__init__(config)
        self.plan = plan
        self.disks = [
            FaultyDisk(
                self.profile,
                allocator=config.allocator,
                store_contents=config.store_contents,
                plan=plan,
                fault_id=i,
            )
            for i in range(config.ndisks)
        ]
