"""A block-oriented B+tree: the paper's word → list-location mapping.

Traditional systems in the paper's introduction "built a B-tree that maps
each word to the locations of its list on disk", and §2 allows ``h(w)`` to
be "a hash function or a tree search".  Cutting & Pedersen (related work)
organize the vocabulary in a B-tree outright.  This module provides that
substrate: a B+tree over integer keys with

* a fanout derived from a disk block size and per-entry byte cost, so tree
  height translates directly into lookup I/O cost;
* insert / get / delete (with borrow-and-merge rebalancing) / ascending
  range scans;
* node accounting (height, node count, occupancy) for the directory-cost
  extension benchmark.

All data lives in leaves; internal nodes route.  Keys are arbitrary
Python ints (word ids); values are arbitrary objects (bucket numbers or
chunk-pointer lists).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Any, Iterator


@dataclass(frozen=True)
class BTreeConfig:
    """Geometry of the tree.

    ``order`` is the maximum number of keys per node; when built from a
    block size, ``order = block_size // entry_bytes`` (at least 3).
    """

    order: int = 64

    def __post_init__(self) -> None:
        if self.order < 3:
            raise ValueError("order must be >= 3")

    @classmethod
    def for_block(cls, block_size: int, entry_bytes: int = 16) -> "BTreeConfig":
        if block_size <= 0 or entry_bytes <= 0:
            raise ValueError("block_size and entry_bytes must be > 0")
        return cls(order=max(3, block_size // entry_bytes))


class _Node:
    __slots__ = ("keys", "children", "values", "next_leaf")

    def __init__(self, leaf: bool) -> None:
        self.keys: list[int] = []
        self.children: list[_Node] | None = None if leaf else []
        self.values: list[Any] | None = [] if leaf else None
        self.next_leaf: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.values is not None


class BTree:
    """B+tree over integer keys."""

    def __init__(self, config: BTreeConfig | None = None) -> None:
        self.config = config or BTreeConfig()
        self._root: _Node = _Node(leaf=True)
        self._size = 0
        self._height = 1

    # -- sizing -----------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Levels from root to leaf, inclusive (1 for a lone leaf)."""
        return self._height

    @property
    def node_count(self) -> int:
        def count(node: _Node) -> int:
            if node.is_leaf:
                return 1
            return 1 + sum(count(c) for c in node.children)

        return count(self._root)

    def lookup_cost_blocks(self, root_cached: bool = True) -> int:
        """Block reads per point lookup (the directory-cost metric).

        With the root pinned in memory — standard practice, and the
        paper keeps its whole directory in memory — a lookup reads
        ``height - 1`` blocks.
        """
        return max(0, self._height - (1 if root_cached else 0))

    def occupancy(self) -> float:
        """Mean fill of all nodes relative to ``order``."""
        total = 0
        used = 0

        def walk(node: _Node) -> None:
            nonlocal total, used
            total += self.config.order
            used += len(node.keys)
            if not node.is_leaf:
                for child in node.children:
                    walk(child)

        walk(self._root)
        return used / total if total else 0.0

    # -- search ------------------------------------------------------------

    def _find_leaf(self, key: int) -> _Node:
        node = self._root
        while not node.is_leaf:
            idx = bisect.bisect_right(node.keys, key)
            node = node.children[idx]
        return node

    def get(self, key: int, default: Any = None) -> Any:
        leaf = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return leaf.values[idx]
        return default

    def __contains__(self, key: int) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def items(self) -> Iterator[tuple[int, Any]]:
        """All (key, value) pairs in ascending key order."""
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        while node is not None:
            yield from zip(node.keys, node.values)
            node = node.next_leaf

    def range(self, lo: int, hi: int) -> Iterator[tuple[int, Any]]:
        """Pairs with ``lo <= key <= hi`` in ascending order."""
        if lo > hi:
            return
        leaf = self._find_leaf(lo)
        idx = bisect.bisect_left(leaf.keys, lo)
        while leaf is not None:
            while idx < len(leaf.keys):
                key = leaf.keys[idx]
                if key > hi:
                    return
                yield key, leaf.values[idx]
                idx += 1
            leaf = leaf.next_leaf
            idx = 0

    # -- insert -------------------------------------------------------------

    def insert(self, key: int, value: Any) -> None:
        """Insert or overwrite."""
        split = self._insert(self._root, key, value)
        if split is not None:
            sep, right = split
            new_root = _Node(leaf=False)
            new_root.keys = [sep]
            new_root.children = [self._root, right]
            self._root = new_root
            self._height += 1

    def _insert(self, node: _Node, key: int, value: Any):
        if node.is_leaf:
            idx = bisect.bisect_left(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                node.values[idx] = value
                return None
            node.keys.insert(idx, key)
            node.values.insert(idx, value)
            self._size += 1
            if len(node.keys) <= self.config.order:
                return None
            return self._split_leaf(node)
        idx = bisect.bisect_right(node.keys, key)
        split = self._insert(node.children[idx], key, value)
        if split is None:
            return None
        sep, right = split
        node.keys.insert(idx, sep)
        node.children.insert(idx + 1, right)
        if len(node.keys) <= self.config.order:
            return None
        return self._split_internal(node)

    def _split_leaf(self, node: _Node):
        mid = len(node.keys) // 2
        right = _Node(leaf=True)
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        right.next_leaf = node.next_leaf
        node.next_leaf = right
        return right.keys[0], right

    def _split_internal(self, node: _Node):
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Node(leaf=False)
        right.keys = node.keys[mid + 1:]
        right.children = node.children[mid + 1:]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return sep, right

    # -- delete -------------------------------------------------------------

    @property
    def _min_keys(self) -> int:
        return self.config.order // 2

    def delete(self, key: int) -> bool:
        """Remove a key; returns True when it was present."""
        removed = self._delete(self._root, key)
        if not self._root.is_leaf and len(self._root.children) == 1:
            self._root = self._root.children[0]
            self._height -= 1
        return removed

    def _delete(self, node: _Node, key: int) -> bool:
        if node.is_leaf:
            idx = bisect.bisect_left(node.keys, key)
            if idx >= len(node.keys) or node.keys[idx] != key:
                return False
            node.keys.pop(idx)
            node.values.pop(idx)
            self._size -= 1
            return True
        idx = bisect.bisect_right(node.keys, key)
        child = node.children[idx]
        removed = self._delete(child, key)
        if removed and len(child.keys) < self._min_keys:
            self._rebalance(node, idx)
        return removed

    def _rebalance(self, parent: _Node, idx: int) -> None:
        child = parent.children[idx]
        left = parent.children[idx - 1] if idx > 0 else None
        right = (
            parent.children[idx + 1]
            if idx + 1 < len(parent.children)
            else None
        )
        # Borrow from a rich sibling first.
        if left is not None and len(left.keys) > self._min_keys:
            self._borrow_left(parent, idx, left, child)
        elif right is not None and len(right.keys) > self._min_keys:
            self._borrow_right(parent, idx, child, right)
        elif left is not None:
            self._merge(parent, idx - 1, left, child)
        elif right is not None:
            self._merge(parent, idx, child, right)

    def _borrow_left(self, parent, idx, left, child) -> None:
        if child.is_leaf:
            child.keys.insert(0, left.keys.pop())
            child.values.insert(0, left.values.pop())
            parent.keys[idx - 1] = child.keys[0]
        else:
            child.keys.insert(0, parent.keys[idx - 1])
            parent.keys[idx - 1] = left.keys.pop()
            child.children.insert(0, left.children.pop())

    def _borrow_right(self, parent, idx, child, right) -> None:
        if child.is_leaf:
            child.keys.append(right.keys.pop(0))
            child.values.append(right.values.pop(0))
            parent.keys[idx] = right.keys[0]
        else:
            child.keys.append(parent.keys[idx])
            parent.keys[idx] = right.keys.pop(0)
            child.children.append(right.children.pop(0))

    def _merge(self, parent, left_idx, left, right) -> None:
        """Fold ``right`` into ``left``; drop the separator."""
        if left.is_leaf:
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            left.next_leaf = right.next_leaf
        else:
            left.keys.append(parent.keys[left_idx])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        parent.keys.pop(left_idx)
        parent.children.pop(left_idx + 1)

    # -- validation -------------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert structural invariants (used by property tests)."""
        order = self.config.order

        def walk(node: _Node, lo, hi, depth: int) -> int:
            assert node.keys == sorted(node.keys), "unsorted keys"
            assert len(node.keys) <= order, "node over capacity"
            for key in node.keys:
                if lo is not None:
                    assert key >= lo, "key below subtree bound"
                if hi is not None:
                    assert key < hi, "key above subtree bound"
            if node.is_leaf:
                assert len(node.values) == len(node.keys)
                return depth
            assert len(node.children) == len(node.keys) + 1
            if node is not self._root:
                assert len(node.keys) >= 1
            depths = set()
            bounds = [lo] + node.keys + [hi]
            for i, child in enumerate(node.children):
                depths.add(walk(child, bounds[i], bounds[i + 1], depth + 1))
            assert len(depths) == 1, "leaves at different depths"
            return depths.pop()

        leaf_depth = walk(self._root, None, None, 1)
        assert leaf_depth == self._height, "height accounting broken"
        # Leaf chain covers exactly the keys in order.
        assert [k for k, _ in self.items()] == sorted(
            k for k, _ in self.items()
        )
        assert self._size == sum(1 for _ in self.items())
