"""A single simulated disk: space accounting, timing, optional contents.

The paper's "exercise disks" process issues read/write system calls to raw
disk partitions and measures elapsed time.  :class:`SimulatedDisk` stands in
for one raw partition:

* **Space** is managed by a free list (first-fit by default, per the paper).
* **Time** is modelled per request as ``seek + rotational latency +
  transfer``, with the crucial refinement that a request starting exactly
  where the head stopped streams sequentially: no seek, no rotational
  latency.  This is what makes append-only policies (``new`` style with
  ``Limit = 0``) dramatically faster in wall time than in operation counts —
  the paper's central Figure 13 observation.
* **Contents** are optionally stored per block, so the retrieval-facing
  index can read real postings back; the evaluation pipeline runs with
  contents disabled, exactly as the paper's pipeline tracked only sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from .freelist import make_freelist
from .profiles import DiskProfile


class DiskFullError(Exception):
    """Raised when an allocation cannot be satisfied on any disk."""


@dataclass
class DiskCounters:
    """Cumulative activity counters for one disk."""

    reads: int = 0
    writes: int = 0
    blocks_read: int = 0
    blocks_written: int = 0
    busy_s: float = 0.0
    seeks: int = 0
    sequential_hits: int = 0

    def snapshot(self) -> "DiskCounters":
        """An independent copy (for per-batch deltas)."""
        return DiskCounters(
            self.reads,
            self.writes,
            self.blocks_read,
            self.blocks_written,
            self.busy_s,
            self.seeks,
            self.sequential_hits,
        )


class SimulatedDisk:
    """One disk: allocator + head-position timing model + optional payloads.

    Parameters
    ----------
    profile:
        Performance/capacity parameters.
    allocator:
        Free-list strategy name (``first-fit``, ``best-fit``, ``buddy``).
    store_contents:
        When True, ``write``/``read`` carry per-block payload bytes so the
        content-mode index can retrieve postings.
    """

    #: Delta-journal hooks, attached by ``DualStructureIndex`` in content
    #: mode; ``frozen`` is set by ``invariants.freeze_index`` on published
    #: snapshots so any write through shared state raises immediately.
    journal = None
    journal_disk = 0
    frozen = False

    def __init__(
        self,
        profile: DiskProfile,
        allocator: str = "first-fit",
        store_contents: bool = False,
    ) -> None:
        self.profile = profile
        self.freelist = make_freelist(allocator, profile.nblocks)
        self.store_contents = store_contents
        self.head = 0
        self.counters = DiskCounters()
        self._blocks: dict[int, bytes] = {}

    def _frozen_violation(self, action: str):
        from ..core.delta import FrozenStateError

        return FrozenStateError(
            f"attempt to {action} on a frozen (published) disk "
            f"{self.profile.name}"
        )

    # -- space -----------------------------------------------------------

    def allocate(self, nblocks: int) -> int | None:
        """Allocate a contiguous chunk; return start block or None."""
        if self.frozen:
            raise self._frozen_violation("allocate blocks")
        return self.freelist.allocate(nblocks)

    def free(self, start: int, nblocks: int) -> None:
        """Return a chunk to free space and drop any stored contents."""
        if self.frozen:
            raise self._frozen_violation("free blocks")
        self.freelist.free(start, nblocks)
        if self.store_contents:
            if self.journal is not None:
                self.journal.note_blocks(self.journal_disk, start, nblocks)
            for b in range(start, start + nblocks):
                self._blocks.pop(b, None)

    @property
    def free_blocks(self) -> int:
        return self.freelist.free_blocks

    @property
    def allocated_blocks(self) -> int:
        return self.freelist.allocated_blocks

    # -- timing ----------------------------------------------------------

    def service(self, start: int, nblocks: int, is_write: bool) -> float:
        """Service one coalesced request; return elapsed seconds.

        A request that begins at the current head position continues a
        sequential stream: it pays transfer time only.  Any other request
        pays a distance-dependent seek plus average rotational latency.
        The head is left one past the last block transferred.
        """
        if start < 0 or start + nblocks > self.profile.nblocks:
            raise DiskFullError(
                f"request [{start}, {start + nblocks}) outside disk "
                f"{self.profile.name} of {self.profile.nblocks} blocks"
            )
        distance = abs(start - self.head)
        if distance == 0:
            elapsed = 0.0
            self.counters.sequential_hits += 1
        else:
            elapsed = (
                self.profile.seek_s(distance) + self.profile.rotational_latency_s
            )
            self.counters.seeks += 1
        elapsed += self.profile.transfer_s(nblocks, is_write)
        self.head = start + nblocks
        self.counters.busy_s += elapsed
        if is_write:
            self.counters.writes += 1
            self.counters.blocks_written += nblocks
        else:
            self.counters.reads += 1
            self.counters.blocks_read += nblocks
        return elapsed

    # -- contents --------------------------------------------------------

    def write_blocks(self, start: int, payloads: list[bytes]) -> None:
        """Store per-block payload bytes starting at ``start``.

        Only meaningful with ``store_contents``; each payload must fit in a
        block.
        """
        if not self.store_contents:
            return
        if self.frozen:
            raise self._frozen_violation("write blocks")
        if self.journal is not None:
            self.journal.note_blocks(self.journal_disk, start, len(payloads))
        for i, payload in enumerate(payloads):
            if len(payload) > self.profile.block_size:
                raise ValueError(
                    f"payload of {len(payload)} bytes exceeds block size "
                    f"{self.profile.block_size}"
                )
            self._blocks[start + i] = payload

    def read_blocks(self, start: int, nblocks: int) -> list[bytes]:
        """Read back per-block payloads (empty bytes for unwritten blocks)."""
        if not self.store_contents:
            raise RuntimeError("disk does not store contents")
        return [self._blocks.get(b, b"") for b in range(start, start + nblocks)]
