"""ExerciseDisks: execute an I/O trace against the simulated disk array.

Mirrors the paper's Section 4.5 exerciser:

* requests for each disk are serviced by an **independent stream** ("requests
  to each disk are issued by independent processes to achieve maximum
  parallelism") — within one batch, a batch's elapsed time is the maximum of
  the per-disk stream times;
* the exerciser **coalesces adjacent requests** in trace order, without
  reordering, when they are on the same disk, in the same direction, and
  physically contiguous — bounded by ``BufferBlock`` blocks per request
  ("to be faithful to real systems with a finite amount of buffering");
* at each batch boundary (after the buckets and the directory are written)
  all streams synchronize — the flush the paper performs to charge every
  policy its full I/O cost.

The exerciser does not allocate space; the trace already carries physical
addresses.  It *does* validate that every address fits the physical disks,
which is how the ``fill 0`` policy is detected as infeasible on realistic
capacities (the paper could not run it either).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .disk import DiskFullError, SimulatedDisk
from .faults import FaultPlan, FaultyDisk, TransientIOError
from .iotrace import IOTrace, OpKind, TraceOp
from .profiles import DiskProfile


@dataclass
class BatchTiming:
    """Timing outcome of one batch update."""

    batch: int
    elapsed_s: float
    per_disk_s: list[float]
    ops_issued: int
    ops_after_coalescing: int
    blocks_moved: int
    #: Transient I/O failures retried during this batch (fault injection).
    retries: int = 0


@dataclass
class ExerciseResult:
    """Full outcome of exercising a trace."""

    batch_timings: list[BatchTiming] = field(default_factory=list)

    @property
    def total_s(self) -> float:
        return sum(b.elapsed_s for b in self.batch_timings)

    @property
    def cumulative_s(self) -> list[float]:
        """Cumulative elapsed time after each batch (paper Figure 13)."""
        out: list[float] = []
        total = 0.0
        for b in self.batch_timings:
            total += b.elapsed_s
            out.append(total)
        return out

    @property
    def per_update_s(self) -> list[float]:
        """Elapsed time of each batch (paper Figure 14)."""
        return [b.elapsed_s for b in self.batch_timings]

    @property
    def total_ops_issued(self) -> int:
        return sum(b.ops_issued for b in self.batch_timings)

    @property
    def total_ops_serviced(self) -> int:
        return sum(b.ops_after_coalescing for b in self.batch_timings)

    @property
    def total_retries(self) -> int:
        return sum(b.retries for b in self.batch_timings)


@dataclass
class _PendingRequest:
    """A coalescing-in-progress request for one disk stream."""

    kind: OpKind
    start: int
    nblocks: int

    def can_absorb(self, op: TraceOp, buffer_blocks: int) -> bool:
        return (
            op.kind is self.kind
            and op.start == self.start + self.nblocks
            and self.nblocks + op.nblocks <= buffer_blocks
        )


class DiskExerciser:
    """Executes :class:`IOTrace` objects on a bank of simulated disks.

    A fresh bank of disks is built per :meth:`run` call so that the timing
    model starts from a clean head position, mirroring the paper's practice
    of running each policy's trace as an independent experiment.
    """

    def __init__(
        self,
        profile: DiskProfile,
        ndisks: int,
        buffer_blocks: int = 256,
        fault_plan: FaultPlan | None = None,
        max_retries: int = 4,
        retry_backoff_s: float = 0.002,
    ) -> None:
        if ndisks <= 0:
            raise ValueError("ndisks must be > 0")
        if buffer_blocks <= 0:
            raise ValueError("buffer_blocks must be > 0")
        if max_retries < 0 or retry_backoff_s < 0:
            raise ValueError("max_retries and retry_backoff_s must be >= 0")
        self.profile = profile
        self.ndisks = ndisks
        self.buffer_blocks = buffer_blocks
        self.fault_plan = fault_plan
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s

    def _make_disks(self) -> list[SimulatedDisk]:
        if self.fault_plan is None:
            return [SimulatedDisk(self.profile) for _ in range(self.ndisks)]
        return [
            FaultyDisk(self.profile, plan=self.fault_plan, fault_id=i)
            for i in range(self.ndisks)
        ]

    def run(self, trace: IOTrace) -> ExerciseResult:
        """Execute the trace; raises :class:`DiskFullError` when any traced
        address lies outside the physical disks."""
        disks = self._make_disks()
        result = ExerciseResult()
        for batch_no, ops in enumerate(trace.batches()):
            result.batch_timings.append(
                self._run_batch(batch_no, ops, disks)
            )
        return result

    def _run_batch(
        self, batch_no: int, ops: list[TraceOp], disks: list[SimulatedDisk]
    ) -> BatchTiming:
        per_disk_s = [0.0] * self.ndisks
        pending: list[_PendingRequest | None] = [None] * self.ndisks
        serviced = 0
        blocks = 0
        retries = 0

        def service_with_retry(disk_id: int, req: _PendingRequest) -> float:
            """One request, with bounded retry + linear backoff on
            transient failures (the recovery a real driver performs)."""
            nonlocal retries
            elapsed = 0.0
            for attempt in range(self.max_retries + 1):
                try:
                    return elapsed + disks[disk_id].service(
                        req.start, req.nblocks, req.kind is OpKind.WRITE
                    )
                except TransientIOError:
                    if attempt == self.max_retries:
                        raise
                    retries += 1
                    elapsed += self.retry_backoff_s * (attempt + 1)
            raise AssertionError("unreachable")

        def flush(disk_id: int) -> None:
            nonlocal serviced, blocks
            req = pending[disk_id]
            if req is None:
                return
            if req.start + req.nblocks > disks[disk_id].profile.nblocks:
                raise DiskFullError(
                    f"trace address {req.start}+{req.nblocks} exceeds disk "
                    f"capacity {disks[disk_id].profile.nblocks} "
                    f"(policy does not fit the physical disks)"
                )
            per_disk_s[disk_id] += service_with_retry(disk_id, req)
            serviced += 1
            blocks += req.nblocks
            pending[disk_id] = None

        for op in ops:
            if op.disk >= self.ndisks:
                raise ValueError(
                    f"trace references disk {op.disk} but exerciser has "
                    f"{self.ndisks}"
                )
            req = pending[op.disk]
            if req is not None and req.can_absorb(op, self.buffer_blocks):
                req.nblocks += op.nblocks
            else:
                flush(op.disk)
                pending[op.disk] = _PendingRequest(op.kind, op.start, op.nblocks)
        for disk_id in range(self.ndisks):
            flush(disk_id)

        return BatchTiming(
            batch=batch_no,
            elapsed_s=max(per_disk_s, default=0.0),
            per_disk_s=per_disk_s,
            ops_issued=len(ops),
            ops_after_coalescing=serviced,
            blocks_moved=blocks,
            retries=retries,
        )
