"""I/O trace records and the paper's Figure-6 style text format.

The ComputeDisks process (paper Section 4.4) does not perform I/O; it emits
a *trace* — the exact sequence of read/write system calls an implementation
would make for a given policy.  The trace is then executed by the
ExerciseDisks process.  Decoupling the two is a deliberate design point of
the paper (each stage's output can be saved, inspected, and re-run), so we
preserve it: traces are first-class values with a line-oriented text
serialization closely following the paper's Figure 6::

    write bucket disk 0 start 0 size 1367
    write directory disk 3 start 0 size 1
    write list word 134416 postings 1034 disk 0 start 4576 size 7
    read list word 134416 postings 1034 disk 0 start 4576 size 7
    end batch
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, TextIO


class OpKind(enum.Enum):
    """Direction of a traced I/O operation."""

    READ = "read"
    WRITE = "write"


class Target(enum.Enum):
    """What structure the operation touches."""

    BUCKET = "bucket"
    DIRECTORY = "directory"
    LONG_LIST = "list"


@dataclass(frozen=True)
class TraceOp:
    """One traced I/O system call.

    ``word`` and ``npostings`` are only meaningful for long-list operations
    (they appear in the paper's trace lines and make traces auditable); for
    bucket and directory flushes they are ``None``.
    """

    kind: OpKind
    target: Target
    disk: int
    start: int
    nblocks: int
    word: int | None = None
    npostings: int | None = None

    def __post_init__(self) -> None:
        if self.disk < 0 or self.start < 0 or self.nblocks <= 0:
            raise ValueError(f"malformed trace op: {self!r}")

    def to_line(self) -> str:
        """Serialize to the Figure-6 style text line."""
        if self.target is Target.LONG_LIST:
            return (
                f"{self.kind.value} list word {self.word} "
                f"postings {self.npostings} disk {self.disk} "
                f"start {self.start} size {self.nblocks}"
            )
        return (
            f"{self.kind.value} {self.target.value} disk {self.disk} "
            f"start {self.start} size {self.nblocks}"
        )

    @classmethod
    def from_line(cls, line: str) -> "TraceOp":
        """Parse a text line produced by :meth:`to_line`."""
        parts = line.split()
        try:
            kind = OpKind(parts[0])
            if parts[1] == "list":
                if (
                    parts[2] != "word"
                    or parts[4] != "postings"
                    or parts[6] != "disk"
                    or parts[8] != "start"
                    or parts[10] != "size"
                ):
                    raise ValueError
                return cls(
                    kind=kind,
                    target=Target.LONG_LIST,
                    word=int(parts[3]),
                    npostings=int(parts[5]),
                    disk=int(parts[7]),
                    start=int(parts[9]),
                    nblocks=int(parts[11]),
                )
            target = Target(parts[1])
            if parts[2] != "disk" or parts[4] != "start" or parts[6] != "size":
                raise ValueError
            return cls(
                kind=kind,
                target=target,
                disk=int(parts[3]),
                start=int(parts[5]),
                nblocks=int(parts[7]),
            )
        except (ValueError, IndexError):
            raise ValueError(f"malformed trace line: {line!r}") from None


class IOTrace:
    """An ordered sequence of trace ops partitioned into batch updates.

    The batch structure matters: the exerciser flushes (synchronizes the
    per-disk streams) at every batch boundary, because the paper flushes all
    buckets and the directory at the end of each batch update.
    """

    END_BATCH = "end batch"

    def __init__(self) -> None:
        self._ops: list[TraceOp] = []
        self._batch_bounds: list[int] = []

    def append(self, op: TraceOp) -> None:
        """Append one operation to the current (open) batch."""
        self._ops.append(op)

    def extend(self, ops: Iterable[TraceOp]) -> None:
        for op in ops:
            self.append(op)

    def end_batch(self) -> None:
        """Close the current batch (empty batches are recorded too)."""
        self._batch_bounds.append(len(self._ops))

    @property
    def nbatches(self) -> int:
        return len(self._batch_bounds)

    @property
    def nops(self) -> int:
        return len(self._ops)

    def ops(self) -> Iterator[TraceOp]:
        """All operations in order, ignoring batch structure."""
        yield from self._ops

    def batches(self) -> Iterator[list[TraceOp]]:
        """Yield each batch's operations as a list."""
        prev = 0
        for bound in self._batch_bounds:
            yield self._ops[prev:bound]
            prev = bound
        if prev < len(self._ops):
            # Trailing ops in an unclosed batch are still visible.
            yield self._ops[prev:]

    # -- text serialization ------------------------------------------------

    def write_text(self, fp: TextIO) -> None:
        """Write the trace in the line-oriented text format."""
        prev = 0
        for bound in self._batch_bounds:
            for op in self._ops[prev:bound]:
                fp.write(op.to_line() + "\n")
            fp.write(self.END_BATCH + "\n")
            prev = bound
        for op in self._ops[prev:]:
            fp.write(op.to_line() + "\n")

    @classmethod
    def read_text(cls, fp: TextIO) -> "IOTrace":
        """Parse a trace from the text format."""
        trace = cls()
        for raw in fp:
            line = raw.strip()
            if not line:
                continue
            if line == cls.END_BATCH:
                trace.end_batch()
            else:
                trace.append(TraceOp.from_line(line))
        return trace

    # -- summary -----------------------------------------------------------

    def count_ops(self, target: Target | None = None) -> int:
        """Number of ops, optionally filtered by target."""
        if target is None:
            return len(self._ops)
        return sum(1 for op in self._ops if op.target is target)

    def count_blocks(self, kind: OpKind | None = None) -> int:
        """Total blocks moved, optionally filtered by direction."""
        return sum(
            op.nblocks for op in self._ops if kind is None or op.kind is kind
        )
