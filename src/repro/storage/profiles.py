"""Disk performance profiles for the exercise-disks simulator.

The paper ran its I/O traces on an IBM RS/6000 Model 350 with four Seagate
SCSI-2 disks on a shared SCSI bus.  We do not have that hardware; instead the
simulator is parameterized by a :class:`DiskProfile` capturing the quantities
that determine trace execution time:

* a seek-time curve (track-to-track, average, full-stroke),
* rotational latency (from spindle RPM),
* sustained transfer rate,
* capacity.

``SEAGATE_SCSI_1994`` approximates the paper's drives (early-90s 3.5" SCSI:
~2 GB, 5400 RPM, ~10.5 ms average seek, ~3 MB/s sustained).  The other
profiles support the extension benchmark that varies disk speed and studies
an optical disk, which the paper's Section 7 reports doing in its extended
technical report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class DiskProfile:
    """Performance and capacity parameters of one simulated disk.

    Seek time for a request ``d`` blocks away from the head follows the
    standard square-root model calibrated to the three published numbers:

    ``seek(d) = tt + (avg - tt) * sqrt(d / (capacity / 3))`` clamped to
    ``max_seek`` — the average seek distance of a random workload is one
    third of the stroke, so the curve passes through (capacity/3, avg).
    """

    name: str
    nblocks: int
    block_size: int
    track_to_track_ms: float
    avg_seek_ms: float
    max_seek_ms: float
    rpm: float
    transfer_mb_s: float
    #: Multiplier on transfer time for writes (optical media write slower).
    write_penalty: float = 1.0

    def __post_init__(self) -> None:
        if self.nblocks <= 0:
            raise ValueError("nblocks must be > 0")
        if self.block_size <= 0:
            raise ValueError("block_size must be > 0")
        if not (
            0 <= self.track_to_track_ms <= self.avg_seek_ms <= self.max_seek_ms
        ):
            raise ValueError(
                "seek times must satisfy 0 <= track-to-track <= avg <= max"
            )
        if self.rpm <= 0 or self.transfer_mb_s <= 0 or self.write_penalty <= 0:
            raise ValueError("rpm, transfer rate and write penalty must be > 0")

    @property
    def rotational_latency_s(self) -> float:
        """Average rotational latency: half a revolution."""
        return 0.5 * 60.0 / self.rpm

    @property
    def block_transfer_s(self) -> float:
        """Time to transfer one block at the sustained rate."""
        return self.block_size / (self.transfer_mb_s * 1_000_000.0)

    def seek_s(self, distance_blocks: int) -> float:
        """Seek time in seconds for a head movement of ``distance_blocks``."""
        if distance_blocks < 0:
            raise ValueError("seek distance must be >= 0")
        if distance_blocks == 0:
            return 0.0
        reference = self.nblocks / 3.0
        t = self.track_to_track_ms + (
            self.avg_seek_ms - self.track_to_track_ms
        ) * math.sqrt(distance_blocks / reference)
        return min(t, self.max_seek_ms) / 1000.0

    def transfer_s(self, nblocks: int, is_write: bool) -> float:
        """Transfer time for ``nblocks`` blocks."""
        if nblocks <= 0:
            raise ValueError("nblocks must be > 0")
        t = nblocks * self.block_transfer_s
        if is_write:
            t *= self.write_penalty
        return t

    def scaled(self, speedup: float, name: str | None = None) -> "DiskProfile":
        """A profile ``speedup``× faster in both seek and transfer.

        Used by the disk-speed extension benchmark.
        """
        if speedup <= 0:
            raise ValueError("speedup must be > 0")
        return DiskProfile(
            name=name or f"{self.name}-x{speedup:g}",
            nblocks=self.nblocks,
            block_size=self.block_size,
            track_to_track_ms=self.track_to_track_ms / speedup,
            avg_seek_ms=self.avg_seek_ms / speedup,
            max_seek_ms=self.max_seek_ms / speedup,
            rpm=self.rpm * speedup,
            transfer_mb_s=self.transfer_mb_s * speedup,
            write_penalty=self.write_penalty,
        )

    def with_capacity(self, nblocks: int) -> "DiskProfile":
        """Same timing parameters with a different capacity."""
        return DiskProfile(
            name=self.name,
            nblocks=nblocks,
            block_size=self.block_size,
            track_to_track_ms=self.track_to_track_ms,
            avg_seek_ms=self.avg_seek_ms,
            max_seek_ms=self.max_seek_ms,
            rpm=self.rpm,
            transfer_mb_s=self.transfer_mb_s,
            write_penalty=self.write_penalty,
        )


#: Approximation of the paper's Seagate SCSI-2 drives (2 GB, 4 KB blocks).
SEAGATE_SCSI_1994 = DiskProfile(
    name="seagate-scsi-1994",
    nblocks=524_288,  # 2 GB / 4 KB
    block_size=4096,
    track_to_track_ms=1.7,
    avg_seek_ms=10.5,
    max_seek_ms=22.0,
    rpm=5400.0,
    transfer_mb_s=3.0,
)

#: A mid-90s "fast SCSI" drive for the disk-speed sweep.
FAST_SCSI_1996 = SEAGATE_SCSI_1994.scaled(2.0, name="fast-scsi-1996")

#: A (conservatively) modern 7200 RPM drive.
MODERN_HDD = DiskProfile(
    name="modern-hdd",
    nblocks=524_288,
    block_size=4096,
    track_to_track_ms=0.5,
    avg_seek_ms=4.0,
    max_seek_ms=9.0,
    rpm=7200.0,
    transfer_mb_s=150.0,
)

#: Magneto-optical disk of the era: very slow seeks, slow writes.
OPTICAL_1994 = DiskProfile(
    name="optical-1994",
    nblocks=262_144,  # 1 GB
    block_size=4096,
    track_to_track_ms=20.0,
    avg_seek_ms=80.0,
    max_seek_ms=150.0,
    rpm=2400.0,
    transfer_mb_s=1.0,
    write_penalty=2.0,  # write-verify pass
)

PROFILES = {
    p.name: p
    for p in (SEAGATE_SCSI_1994, FAST_SCSI_1996, MODERN_HDD, OPTICAL_1994)
}
