"""Concurrent query serving over the incrementally updated index.

The subsystem the paper's motivation asks for but its evaluation never
builds: reader threads answer boolean / streamed / vector queries against
an immutable published :class:`IndexSnapshot` while a single writer
absorbs batch updates, publishing a fresh snapshot atomically at each
flush (copy-on-publish through the checkpoint machinery).  A
snapshot-keyed :class:`QueryResultCache` short-circuits repeated queries
and is invalidated wholesale at publish; :class:`LoadGenerator` drives the
mixed workload and reports throughput plus tail latency.
"""

from .cache import CacheStats, QueryResultCache
from .loadgen import LoadConfig, LoadGenerator, ServingReport
from .server import QueryService, ServiceError, ServiceStats
from .snapshot import IndexSnapshot

__all__ = [
    "CacheStats",
    "IndexSnapshot",
    "LoadConfig",
    "LoadGenerator",
    "QueryResultCache",
    "QueryService",
    "ServiceError",
    "ServiceStats",
    "ServingReport",
]
