"""Concurrent query serving over the incrementally updated index.

The subsystem the paper's motivation asks for but its evaluation never
builds: reader threads answer boolean / streamed / vector queries against
an immutable published :class:`IndexSnapshot` while a single writer
absorbs batch updates, publishing a fresh snapshot atomically at each
flush — either a full checkpoint clone (``publish_mode="clone"``) or an
incremental copy-on-write snapshot sharing all untouched structure with
its predecessor (``publish_mode="cow"``).  A validity-ranged
:class:`QueryResultCache` short-circuits repeated queries and is
invalidated delta-scoped at cow publishes (wholesale under clone);
:class:`LoadGenerator` drives the mixed workload — optionally comparing
every cow snapshot against the full-clone oracle — and reports
throughput plus tail and publish latency.

Beyond one interpreter, :mod:`repro.service.gateway` puts each shard
behind its own OS process (:mod:`repro.service.worker`, speaking the
:mod:`repro.service.wire` frame protocol) with an asyncio scatter-gather
gateway in front: per-shard deadlines, bounded-queue admission control,
and checkpoint + op-log failover when a worker dies.  With
``replicas > 1`` each shard runs k worker processes
(:mod:`repro.service.replication`): writes fan out to every healthy
replica, reads rotate across them with every answer validated against
the published version vector, and a SIGKILLed replica is rebuilt in the
background while its siblings keep serving — a
:class:`~repro.core.rebalance.RebuildScheduler` meanwhile staggers
``grow_buckets`` rebuilds so at most one shard pays the rehash spike per
flush round.

With ``read_tier="immediate"`` the service additionally keeps a
:class:`~repro.core.memtier.MemTier` — a compressed in-memory write
buffer absorbed into every answer through :mod:`repro.query.twotier` —
so ingested documents are queryable *before* any flush;
:class:`~repro.service.server.BackgroundMerger` drains the buffer
through the ordinary flush/publish path on a background thread.
"""

from .cache import CacheStats, QueryResultCache
from .gateway import (
    AsyncShardGateway,
    GatewayError,
    GatewayOverloaded,
    GatewayService,
    GatewaySnapshot,
    RemoteWorkerError,
    ShardDeadlineExceeded,
    ShardProxy,
    WorkerDied,
    WorkerProcess,
)
from .loadgen import LoadConfig, LoadGenerator, ServingReport
from .replication import (
    Replica,
    ReplicaSet,
    ReplicaState,
    ReplicationStats,
)
from .server import (
    BackgroundMerger,
    QueryService,
    ServiceError,
    ServiceStats,
)
from .snapshot import IndexSnapshot
from .worker import FlushOutcome, ShardWorker, WorkerSpec

__all__ = [
    "AsyncShardGateway",
    "BackgroundMerger",
    "CacheStats",
    "FlushOutcome",
    "GatewayError",
    "GatewayOverloaded",
    "GatewayService",
    "GatewaySnapshot",
    "IndexSnapshot",
    "LoadConfig",
    "LoadGenerator",
    "QueryResultCache",
    "QueryService",
    "RemoteWorkerError",
    "Replica",
    "ReplicaSet",
    "ReplicaState",
    "ReplicationStats",
    "ServiceError",
    "ServiceStats",
    "ServingReport",
    "ShardDeadlineExceeded",
    "ShardProxy",
    "ShardWorker",
    "WorkerDied",
    "WorkerProcess",
    "WorkerSpec",
]
