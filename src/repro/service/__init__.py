"""Concurrent query serving over the incrementally updated index.

The subsystem the paper's motivation asks for but its evaluation never
builds: reader threads answer boolean / streamed / vector queries against
an immutable published :class:`IndexSnapshot` while a single writer
absorbs batch updates, publishing a fresh snapshot atomically at each
flush — either a full checkpoint clone (``publish_mode="clone"``) or an
incremental copy-on-write snapshot sharing all untouched structure with
its predecessor (``publish_mode="cow"``).  A validity-ranged
:class:`QueryResultCache` short-circuits repeated queries and is
invalidated delta-scoped at cow publishes (wholesale under clone);
:class:`LoadGenerator` drives the mixed workload — optionally comparing
every cow snapshot against the full-clone oracle — and reports
throughput plus tail and publish latency.
"""

from .cache import CacheStats, QueryResultCache
from .loadgen import LoadConfig, LoadGenerator, ServingReport
from .server import QueryService, ServiceError, ServiceStats
from .snapshot import IndexSnapshot

__all__ = [
    "CacheStats",
    "IndexSnapshot",
    "LoadConfig",
    "LoadGenerator",
    "QueryResultCache",
    "QueryService",
    "ServiceError",
    "ServiceStats",
    "ServingReport",
]
