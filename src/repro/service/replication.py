"""Shard replication: k replicas per shard behind the asyncio gateway.

PR 6's gateway runs one worker process per shard, which leaves a single
point of unavailability: a SIGKILLed worker makes its shard's documents
unreadable until checkpoint restore + op-log replay completes.  This
module adds the replica layer the gateway composes:

* :class:`Replica` — one worker process serving one copy of a shard,
  with its own stream connection, request sequencing, health state, and
  bookkeeping of how far through the shard's op log it has applied.
* :class:`ReplicaSet` — the k replicas of one shard plus the shared
  recovery material (one op log, one checkpoint blob — the journal is a
  property of the *shard's write history*, not of any replica) and the
  round-robin read rotation with eligibility filtering.
* :class:`ReplicationStats` — the counters the serving report surfaces.

The replication protocol (DESIGN.md §15) in brief:

**Writes** journal once per shard (journal-before-RPC, as before) and
fan out to every ``HEALTHY`` replica.  A replica whose connection breaks
is marked ``RECOVERING`` and rebuilt in the background — checkpoint
restore plus catch-up replay of the shared op log — while its siblings
keep absorbing writes and serving reads.  Per-replica ``log_pos``
tracks exactly which journal prefix each replica has applied, so a
write racing a rebuild can never double-apply an op: whichever path
holds the replica's lock first applies it, and the other sees
``log_pos`` has moved past its op.

**Reads** rotate round-robin over *eligible* replicas: ``HEALTHY``,
fully caught up on the op log, and at (or past) the published version
vector entry — a replica lagging one publish epoch is excluded from
rotation outright.  Every read travels the worker's ``versioned_read``
RPC and comes back stamped ``(value, version, mem_epoch)``; the gateway
validates the stamp against the published vector before trusting the
answer and discards stale responses (the replica is then resynced).  A
replica that misses its deadline or dies mid-read fails over
transparently to a sibling; only when *no* replica of a shard is
serviceable does a read wait for a rebuild — which is exactly the k=1
degenerate case, i.e. PR 6's behavior.

**Rebuild staggering**: each flush outcome reports whether the shard's
bucket occupancy crossed the growth threshold; the gateway feeds those
wants into a :class:`~repro.core.rebalance.RebuildScheduler` so at most
one shard grows (and pays the rehash + full-clone publish spike) per
flush round.  The grant rides the journaled flush op, so every replica
of a shard — including one rebuilt later from checkpoint + replay —
grows at the identical batch boundary.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, replace as dc_replace

from .worker import WorkerSpec


class ReplicaState(enum.Enum):
    """The failover state machine (transitions in DESIGN.md §15).

    ``HEALTHY`` —(connection breaks / stale stamp)→ ``RECOVERING``
    —(rebuild completes)→ ``HEALTHY``; a rebuild that cannot complete
    (respawn keeps failing) parks the replica at ``FAILED``, which only
    an explicit re-kick leaves.
    """

    HEALTHY = "healthy"
    RECOVERING = "recovering"
    FAILED = "failed"


class Replica:
    """One worker process serving one copy of a shard.

    Owns the per-connection machinery (streams, request sequence,
    serialization lock) plus the replication bookkeeping: health state,
    the last version / mem-epoch stamp the gateway recorded for it, and
    ``log_pos`` — how many ops of the shard's journal it has applied.
    The asyncio plumbing that *drives* a replica lives in the gateway;
    this object is the state it operates on.
    """

    def __init__(self, shard_id: int, replica_id: int, spec: WorkerSpec):
        self.shard_id = shard_id
        self.replica_id = replica_id
        self.spec = spec
        self.worker = None  # WorkerProcess, attached by the gateway
        self.reader = None
        self.writer = None
        self.seq = itertools.count(1)
        self.lock = None  # asyncio.Lock, created on the gateway's loop
        self.state = ReplicaState.HEALTHY
        #: Shard version (writer batch counter) after this replica's last
        #: acknowledged flush or rebuild.
        self.version = 0
        #: Memory-tier epoch at the same point (immediate tier only).
        self.mem_epoch = 0
        #: Ops of the shard's journal this replica has applied.
        self.log_pos = 0
        #: Occupancy trigger from the last flush outcome.
        self.wants_grow = False
        #: The in-flight background rebuild, if any.
        self.rebuild_task = None
        #: Generation counter: bumped at every respawn so concurrent
        #: observers of one death agree on a single rebuild.
        self.epoch = 0
        #: Lazily attached per-replica read micro-batcher (the gateway's
        #: ``_ReadBatcher``).  It lives on the *replica*, not the shard:
        #: the read rotation picks a replica per logical read first, so
        #: each member of one batch frame is bound for exactly this
        #: connection — batching never defeats the round-robin spread or
        #: the per-answer version-vector validation.  The batcher holds
        #: no connection state of its own (it addresses ``writer`` /
        #: ``reader`` under ``lock`` at flush time), so it survives
        #: respawns untouched.
        self.batcher = None

    @property
    def name(self) -> str:
        return f"shard {self.shard_id}/r{self.replica_id}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Replica({self.name}, {self.state.value}, "
            f"version={self.version}, log_pos={self.log_pos})"
        )


class ReplicaSet:
    """The k replicas of one shard plus their shared recovery material.

    The op log and checkpoint blob live here — not per replica — because
    they describe the shard's write history, which is replica-invariant:
    any replica can be rebuilt from the one checkpoint plus the one log.
    The log is truncated only when *every* replica is ``HEALTHY`` and
    fully caught up (otherwise an in-flight rebuild would lose its
    tail), so the invariant "the journal holds exactly the ops since the
    stored checkpoint" always holds for every replica at once.
    """

    def __init__(
        self, shard_id: int, specs: list[WorkerSpec]
    ) -> None:
        self.shard_id = shard_id
        self.replicas = [
            Replica(shard_id, j, spec) for j, spec in enumerate(specs)
        ]
        self.oplog: list[tuple] = []
        self.checkpoint: bytes | None = None
        #: Published version-vector entry for this shard; rotation
        #: excludes replicas trailing it.
        self.expected_version = 0
        #: Published memory-tier epoch (immediate tier only).
        self.expected_mem_epoch = 0
        #: A rebalance merged or moved this shard's slice away: the set
        #: stays alive for reads pinned to pre-cutover routing epochs
        #: but receives no writes, flushes, or checkpoints, and the
        #: planner never picks it again.
        self.retired = False
        self._cursor = 0

    @property
    def wants_grow(self) -> bool:
        """The shard's growth trigger: any current replica reported it.

        Healthy replicas agree (same ops, same occupancy); the ``any``
        covers windows where some replicas are mid-rebuild.
        """
        return any(
            r.wants_grow
            for r in self.replicas
            if r.state is ReplicaState.HEALTHY
        )

    def eligible(self, replica: Replica) -> bool:
        """May this replica serve a read right now?

        Healthy and not trailing the published version vector (version
        *and*, on the immediate tier, mem epoch) — the version-vector
        guard that keeps a replica lagging one publish epoch out of the
        rotation.  ``log_pos`` is deliberately *not* required to be at
        the journal head: a healthy replica behind the head just has
        writes in flight on its connection, and a read queues behind
        them on the connection lock, landing on the boundary state —
        exactly the single-worker queueing semantics.
        """
        return (
            replica.state is ReplicaState.HEALTHY
            and replica.version >= self.expected_version
            and replica.mem_epoch >= self.expected_mem_epoch
        )

    def rotation(self) -> list[Replica]:
        """Eligible replicas in round-robin order (read load balancing).

        Each call starts one position later than the previous, so
        consecutive reads spread across the set; ineligible replicas are
        filtered out, preserving order.
        """
        n = len(self.replicas)
        start = self._cursor
        self._cursor = (self._cursor + 1) % n
        ordered = [self.replicas[(start + k) % n] for k in range(n)]
        return [r for r in ordered if self.eligible(r)]

    def healthy(self) -> list[Replica]:
        return [
            r for r in self.replicas if r.state is ReplicaState.HEALTHY
        ]

    def caught_up(self) -> bool:
        """Every replica healthy and at the end of the op log — the only
        state in which the log may be truncated."""
        return all(
            r.state is ReplicaState.HEALTHY
            and r.log_pos == len(self.oplog)
            for r in self.replicas
        )

    def describe(self) -> dict:
        return {
            "shard": self.shard_id,
            "replicas": [
                {
                    "replica": r.replica_id,
                    "state": r.state.value,
                    "version": r.version,
                    "log_pos": r.log_pos,
                    "wants_grow": r.wants_grow,
                }
                for r in self.replicas
            ],
            "oplog": len(self.oplog),
            "expected_version": self.expected_version,
            "retired": self.retired,
        }


@dataclass
class ReplicationStats:
    """Replication-layer counters (the report's ``replication`` section)."""

    #: versioned_read answers served, by replica slot they landed on.
    reads_served: int = 0
    #: Reads that skipped at least one replica (death, deadline, or
    #: ineligibility with a live sibling picking up the query).
    read_failovers: int = 0
    #: Stamped answers discarded because they trailed the published
    #: version vector; each discard also resyncs the offending replica.
    stale_discarded: int = 0
    #: Reads that found no serviceable replica and had to wait for a
    #: rebuild (the k=1 full-recovery-latency path).
    reads_waited_for_rebuild: int = 0
    rebuilds_started: int = 0
    rebuilds_completed: int = 0
    rebuild_failures: int = 0
    #: Checkpoint rounds skipped because a replica was mid-rebuild (the
    #: op log must be retained for its catch-up replay).
    checkpoints_deferred: int = 0
    #: Healthy replicas of one shard disagreeing on a flush outcome —
    #: always 0 unless the determinism contract is broken.
    replica_divergences: int = 0

    def as_dict(self) -> dict:
        return {
            "reads_served": self.reads_served,
            "read_failovers": self.read_failovers,
            "stale_discarded": self.stale_discarded,
            "reads_waited_for_rebuild": self.reads_waited_for_rebuild,
            "rebuilds_started": self.rebuilds_started,
            "rebuilds_completed": self.rebuilds_completed,
            "rebuild_failures": self.rebuild_failures,
            "checkpoints_deferred": self.checkpoints_deferred,
            "replica_divergences": self.replica_divergences,
        }


def replica_specs(
    base: WorkerSpec,
    replicas: int,
    fault_plans: dict | None,
    shard_id: int,
) -> list[WorkerSpec]:
    """Derive the per-replica specs for one shard.

    ``fault_plans`` keys address a single replica: an ``int`` key is
    shorthand for ``(shard, 0)`` (replica 0 — PR 6 compatibility, where
    each shard *was* its replica 0), a ``(shard, replica)`` tuple is
    precise.  The chaos battery leans on this to SIGKILL exactly one
    replica of a replicated shard.
    """
    plans = fault_plans or {}
    specs = []
    for j in range(replicas):
        plan = plans.get((shard_id, j))
        if plan is None and j == 0:
            plan = plans.get(shard_id)
        specs.append(dc_replace(base, fault_plan=plan))
    return specs
