"""The concurrent query service: one writer, many snapshot readers.

Protocol (DESIGN.md §10):

* a single **writer** owns the live :class:`~repro.textindex.TextDocumentIndex`
  and is the only thread that mutates it (``add_document`` /
  ``delete_document`` / ``flush_and_publish`` serialize on the writer lock);
* at each flush the writer *publishes*: it clones the index at the batch
  boundary — either wholesale (``publish_mode="clone"``, the original
  copy-on-publish through the checkpoint machinery) or incrementally
  (``publish_mode="cow"``, structurally sharing everything the batch's
  delta journal did not touch with the previous snapshot) — wraps the
  clone in an :class:`~repro.service.snapshot.IndexSnapshot`, atomically
  swaps it into ``self._snapshot`` and invalidates the result cache:
  wholesale under ``clone``, delta-scoped under ``cow`` (only entries
  whose terms intersect the batch's dirty vocabulary are dropped);
* **readers** never lock: they load the current snapshot reference (one
  atomic pointer read) and evaluate against that immutable structure, so a
  query that started before a publish simply finishes on the older
  snapshot — the serving-layer analogue of the paper's "the batch can be
  searched simultaneously with the larger index".

Fault tolerance: with ``IndexConfig(crash_safe=True, fault_plan=...)`` a
flush that dies mid-update (injected crash, torn write, transient I/O
error) is rolled back via :meth:`DualStructureIndex.recover` and replayed;
a crash injected during the publish clone is simply retried, because the
flush had already completed at a consistent boundary.  Readers are never
exposed to either: the previous snapshot stays published until the new one
is fully built.
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass, field

from ..core.checkpoint import CheckpointError
from ..core.index import BatchResult, IndexConfig
from ..core.invariants import InvariantError
from ..core.memtier import MemTier
from ..core.shard import IndexShard
from ..core.sharded import build_text_index
from ..pipeline.profiling import (
    HitMissCounters,
    LatencyRecorder,
    StageTimings,
)
from ..query import twotier
from ..query.reference import BruteForceIndex
from ..query.vector import ScoredDocument
from ..storage.faults import InjectedCrash, TransientIOError
from ..text.tokenizer import TokenizerConfig, tokenize_document
from ..textindex import QueryAnswer
from .cache import QueryResultCache
from .snapshot import IndexSnapshot

_OPERATORS = {"and", "or", "not"}


def _boolean_terms(query: str) -> tuple[frozenset, bool]:
    """The vocabulary terms of a boolean query, plus whether its answer
    depends on the doc-id universe (it contains a ``NOT``)."""
    tokens = [t.lower() for t in re.split(r"[\s()]+", query) if t]
    terms = frozenset(t for t in tokens if t not in _OPERATORS)
    return terms, "not" in tokens


def _streamed_terms(query: str) -> frozenset:
    return frozenset(t.lower() for t in query.split()[::2])


class ServiceError(Exception):
    """Raised when a flush cannot complete within the retry budget."""


@dataclass
class ServiceStats:
    """Counters describing one service lifetime."""

    publishes: int = 0
    cow_publishes: int = 0
    full_clone_publishes: int = 0
    cow_fallbacks: int = 0
    documents_ingested: int = 0
    documents_deleted: int = 0
    flush_recoveries: int = 0
    publish_retries: int = 0
    invariant_checks: int = 0
    queries: dict[str, int] = field(default_factory=dict)

    @property
    def queries_served(self) -> int:
        return sum(self.queries.values())

    def as_dict(self) -> dict:
        return {
            "publishes": self.publishes,
            "cow_publishes": self.cow_publishes,
            "full_clone_publishes": self.full_clone_publishes,
            "cow_fallbacks": self.cow_fallbacks,
            "documents_ingested": self.documents_ingested,
            "documents_deleted": self.documents_deleted,
            "flush_recoveries": self.flush_recoveries,
            "publish_retries": self.publish_retries,
            "invariant_checks": self.invariant_checks,
            "queries": dict(sorted(self.queries.items())),
            "queries_served": self.queries_served,
        }


class QueryService:
    """Snapshot-isolated query serving over an incrementally updated index.

    Readers call ``search_boolean`` / ``search_streamed`` /
    ``search_vector`` from any number of threads; the writer ingests and
    publishes.  Cached answers are keyed by ``(kind, query)`` with a
    snapshot-id validity interval, and report the read ops the original
    evaluation charged (a hit costs no I/O; the cache stats record it).

    ``publish_mode`` selects how snapshots are built: ``"clone"`` (the
    default, and the differential-testing oracle) serializes the whole
    index per publish; ``"cow"`` builds each snapshot incrementally from
    the previous one plus the writer's delta journal — O(batch) instead
    of O(index) — falling back to a full clone whenever the journal
    cannot prove coverage (crash recovery, bucket growth).
    ``buffer_cache_blocks`` > 0 attaches a shared LRU of decoded
    long-list chunks to every published snapshot (carried across cow
    publishes minus the batch's dirty blocks).

    ``shards`` > 1 partitions the collection by stable doc-id hash
    across that many independent dual-structure volumes (see
    :mod:`repro.core.sharded`): the single-writer/lock-free-reader
    protocol is unchanged — the writer still serializes on one lock and
    a publish swaps the complete shard-snapshot vector in as one
    reference assignment — but flushes touch only the shards a batch
    reached (``flush_jobs`` > 1 runs them in parallel) and queries
    scatter-gather across shards with byte-identical answers.  With the
    default ``shards=1`` the service runs the exact single-volume path.
    """

    def __init__(
        self,
        config: IndexConfig | None = None,
        tokenizer_config: TokenizerConfig | None = None,
        *,
        cache_capacity: int = 256,
        check_invariants: bool = False,
        track_reference: bool = False,
        max_flush_retries: int = 8,
        publish_mode: str = "clone",
        buffer_cache_blocks: int = 0,
        shards: int = 1,
        router_seed: int = 0,
        flush_jobs: int = 1,
        flush_executor: str = "thread",
        read_tier: str = "snapshot",
        mem_codec: str = "delta",
        mem_seal_docs: int = 256,
        mem_seal_postings: int = 8192,
    ) -> None:
        if max_flush_retries < 0:
            raise ValueError("max_flush_retries must be >= 0")
        if publish_mode not in ("clone", "cow"):
            raise ValueError("publish_mode must be 'clone' or 'cow'")
        if buffer_cache_blocks < 0:
            raise ValueError("buffer_cache_blocks must be >= 0")
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if flush_jobs < 1:
            raise ValueError("flush_jobs must be >= 1")
        if read_tier not in ("snapshot", "immediate"):
            raise ValueError("read_tier must be 'snapshot' or 'immediate'")
        self._writer: IndexShard = build_text_index(
            config,
            tokenizer_config=tokenizer_config,
            shards=shards,
            router_seed=router_seed,
            flush_jobs=flush_jobs,
            flush_executor=flush_executor,
        )
        self.shards = shards
        self._tokenizer_config = tokenizer_config
        self._writer_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self.cache = QueryResultCache(cache_capacity)
        self.check_invariants = check_invariants
        self.max_flush_retries = max_flush_retries
        self.publish_mode = publish_mode
        self.buffer_cache_blocks = buffer_cache_blocks
        self.buffer_counters = (
            HitMissCounters() if buffer_cache_blocks else None
        )
        self.stats = ServiceStats()
        self.timings = StageTimings()
        self.publish_latency = LatencyRecorder()
        self._reference = BruteForceIndex() if track_reference else None
        # Publish the empty index so readers always have a snapshot
        # (always a full clone: there is no previous snapshot to share
        # structure with).
        self._snapshot = self._finish_publish(
            self._build_snapshot(snapshot_id=0), cow=False
        )
        # The immediate-access memory tier (DESIGN.md §14): a queryable
        # compressed write buffer mirroring the writer's pending batch,
        # rebased onto each published snapshot.  Built only when the
        # service serves the immediate tier.
        self.read_tier = read_tier
        self._memtier: MemTier | None = None
        if read_tier == "immediate":
            self._memtier = MemTier(
                codec=mem_codec,
                seal_docs=mem_seal_docs,
                seal_postings=mem_seal_postings,
                base=self._snapshot,
            )

    # -- writer API --------------------------------------------------------

    @property
    def writer_index(self) -> IndexShard:
        """The live index (writer-side inspection; do not query from
        reader threads — use :meth:`snapshot`)."""
        return self._writer

    def add_document(self, text: str, doc_id: int | None = None) -> int:
        """Ingest one document into the writer's in-memory batch.

        The document becomes visible to readers at the next
        :meth:`flush_and_publish` — exactly the paper's batch-update
        visibility contract.  ``doc_id`` pins an explicit non-decreasing
        global id (the skewed workload generator targets shards by
        choosing ids; ordinary callers let the writer assign them).
        """
        with self._writer_lock:
            with self.timings.stage("serve.ingest"):
                doc_id = self._writer.add_document(text, doc_id=doc_id)
                if self._memtier is not None:
                    # Immediate visibility: the buffered postings serve
                    # reads the moment this returns (readers never see a
                    # partially inserted document — the tier's visibility
                    # watermark advances last).
                    self._memtier.add_document(
                        doc_id,
                        tokenize_document(text, self._tokenizer_config),
                    )
                if self._reference is not None:
                    self._reference.add_document(
                        doc_id,
                        tokenize_document(text, self._tokenizer_config),
                    )
            self.stats.documents_ingested += 1
            return doc_id

    def delete_document(self, doc_id: int) -> None:
        """Delete a document; visible to readers at the next publish
        (immediately, as a tombstone, when serving the immediate tier)."""
        with self._writer_lock:
            self._writer.delete_document(doc_id)
            if self._memtier is not None:
                self._memtier.delete_document(doc_id)
            if self._reference is not None:
                self._reference.delete_document(doc_id)
            self.stats.documents_deleted += 1

    def split_shard(self, victim: int) -> int:
        """Split a hot shard's hash slice onto a new shard (sharded
        writers only).  Readers keep serving the published pre-split
        snapshot; the new topology (and its bumped routing epoch, which
        invalidates every cached answer via the version vector) lands at
        the next :meth:`flush_and_publish`."""
        with self._writer_lock:
            if not hasattr(self._writer, "split_shard"):
                raise ValueError("split requires a sharded service")
            return self._writer.split_shard(victim)

    def merge_shards(self, src: int, dst: int) -> None:
        """Merge an underloaded shard into a sibling (sharded writers
        only); visibility follows the same publish contract as
        :meth:`split_shard`."""
        with self._writer_lock:
            if not hasattr(self._writer, "merge_shards"):
                raise ValueError("merge requires a sharded service")
            self._writer.merge_shards(src, dst)

    def flush_and_publish(self) -> tuple[BatchResult, IndexSnapshot]:
        """Apply the pending batch and atomically publish a new snapshot.

        Returns the flush's :class:`BatchResult` and the published
        snapshot.  Injected crashes and transient I/O failures during the
        flush roll back and replay through the index's recovery point
        (``crash_safe=True``); failures during the publish clone are
        retried in place.  Raises :class:`ServiceError` when the retry
        budget is exhausted.
        """
        with self._writer_lock:
            with self.timings.stage("serve.flush"):
                result = self._flush_with_recovery()
            with self.timings.stage("serve.publish"):
                with self.publish_latency.span():
                    snapshot = self._publish_locked()
            return result, snapshot

    def _flush_with_recovery(self) -> BatchResult:
        attempts = 0
        recovering = False
        while True:
            try:
                if recovering:
                    # Roll back to the last completed batch boundary and
                    # replay the aborted batch (paper §1 restartability).
                    # If the replay dies too, the next attempt recovers
                    # again — never re-flushes on top of partial state.
                    self.stats.flush_recoveries += 1
                    replayed = self._writer.recover(replay=True)
                    if replayed is not None:
                        return replayed
                    recovering = False
                    continue
                return self._writer.flush_batch()
            except (InjectedCrash, TransientIOError) as exc:
                if not self._writer.crash_safe:
                    raise
                attempts += 1
                if attempts > self.max_flush_retries:
                    raise ServiceError(
                        f"flush failed {attempts} times; last: {exc!r}"
                    ) from exc
                recovering = True

    def _build_snapshot(self, snapshot_id: int) -> IndexSnapshot:
        attempts = 0
        while True:
            try:
                reference = (
                    self._reference.freeze()
                    if self._reference is not None
                    else None
                )
                snapshot = IndexSnapshot.publish_from(
                    self._writer, snapshot_id, reference=reference
                )
                break
            except (InjectedCrash, TransientIOError) as exc:
                # The flush already completed: the writer sits at a
                # consistent batch boundary, so cloning is safely
                # repeatable.
                attempts += 1
                if attempts > self.max_flush_retries:
                    raise ServiceError(
                        f"publish failed {attempts} times; last: {exc!r}"
                    ) from exc
                self.stats.publish_retries += 1
        if self.check_invariants:
            report = snapshot.index.check()
            self.stats.invariant_checks += 1
            if not report.ok:
                raise InvariantError(report)
        return snapshot

    def _build_snapshot_cow(
        self, snapshot_id: int, prev: IndexSnapshot, delta
    ) -> IndexSnapshot:
        """Build the next snapshot incrementally from ``prev`` + ``delta``.

        Propagates :class:`CheckpointError` (delta cannot cover the gap)
        to the caller, which falls back to the full clone; injected
        crashes and transient I/O errors are retried in place, exactly
        like the full-clone path — nothing was published yet.
        """
        attempts = 0
        while True:
            try:
                reference = (
                    self._reference.freeze()
                    if self._reference is not None
                    else None
                )
                snapshot = IndexSnapshot.publish_incremental(
                    self._writer,
                    prev,
                    delta,
                    snapshot_id,
                    reference=reference,
                )
                break
            except (InjectedCrash, TransientIOError) as exc:
                attempts += 1
                if attempts > self.max_flush_retries:
                    raise ServiceError(
                        f"publish failed {attempts} times; last: {exc!r}"
                    ) from exc
                self.stats.publish_retries += 1
        if self.check_invariants:
            report = snapshot.index.check()
            self.stats.invariant_checks += 1
            if not report.ok:
                raise InvariantError(report)
        return snapshot

    def _finish_publish(
        self,
        snapshot: IndexSnapshot,
        cow: bool,
        delta=None,
        prev: IndexSnapshot | None = None,
    ) -> IndexSnapshot:
        """Publish-time finishing: freeze barrier + buffer cache wiring."""
        if self.check_invariants:
            # Debug-mode write barrier: published (and possibly shared)
            # structure must never be mutated again.
            snapshot.index.freeze()
        if self.buffer_cache_blocks:
            # On a cow publish each volume carries the previous
            # snapshot's cache forward minus the delta's dirty blocks;
            # otherwise a fresh cache is attached.
            carry = cow and prev is not None and delta is not None
            snapshot.index.attach_buffer_cache(
                self.buffer_cache_blocks,
                self.buffer_counters,
                prev=prev.index if carry else None,
                delta=delta if carry else None,
            )
        return snapshot

    def _publish_locked(self) -> IndexSnapshot:
        prev = self._snapshot
        new_id = prev.snapshot_id + 1
        delta = self._writer.delta
        snapshot = None
        cow = False
        if self.publish_mode == "cow" and delta is not None:
            try:
                snapshot = self._build_snapshot_cow(new_id, prev, delta)
                cow = True
            except CheckpointError:
                # The journal cannot prove coverage (crash recovery,
                # bucket growth, config drift): fall back to the oracle.
                self.stats.cow_fallbacks += 1
        if snapshot is None:
            snapshot = self._build_snapshot(new_id)
        snapshot = self._finish_publish(snapshot, cow=cow, delta=delta, prev=prev)
        # Cache update precedes the swap so no reader can compute against
        # the new snapshot while stale entries are still resident.
        if cow:
            self.cache.publish_delta(
                new_id,
                self._writer.dirty_terms(),
                universe_changed=snapshot.ndocs != prev.ndocs,
                deletions_changed=delta.deletions_changed,
                versions=snapshot.version_vector,
            )
        else:
            self.cache.invalidate()
        if delta is not None:
            delta.clear()
        # The swap is a single reference assignment (atomic under the
        # interpreter); readers holding the old snapshot finish on it.
        self._snapshot = snapshot
        if self._memtier is not None:
            # Rebase the memory tier onto the new snapshot: buffered
            # postings the flush absorbed are pruned, anything the writer
            # buffered after this batch boundary survives.  Old views
            # remain content-equivalent (old base + buffer == new base +
            # pruned buffer), so in-flight immediate readers are safe.
            self._memtier.rebase(snapshot)
            snapshot.mem_epoch = self._memtier.epoch
        self.stats.publishes += 1
        if cow:
            self.stats.cow_publishes += 1
        else:
            self.stats.full_clone_publishes += 1
        return snapshot

    # -- reader API --------------------------------------------------------

    def snapshot(self) -> IndexSnapshot:
        """The currently published snapshot (atomic reference read)."""
        return self._snapshot

    @property
    def memtier(self) -> MemTier | None:
        """The immediate-access memory tier (None on snapshot-only
        services)."""
        return self._memtier

    def memtier_stats(self) -> dict | None:
        """The memory tier's counters, or None when not serving it."""
        return self._memtier.stats() if self._memtier is not None else None

    def _count_query(self, kind: str) -> None:
        with self._stats_lock:
            self.stats.queries[kind] = self.stats.queries.get(kind, 0) + 1

    def _resolve_tier(self, tier: str | None) -> str:
        tier = tier or self.read_tier
        if tier not in ("snapshot", "immediate"):
            raise ValueError("tier must be 'snapshot' or 'immediate'")
        if tier == "immediate" and self._memtier is None:
            raise ValueError(
                "immediate tier requested but the service was built with "
                "read_tier='snapshot'"
            )
        return tier

    def search_boolean(
        self,
        query: str,
        snapshot: IndexSnapshot | None = None,
        tier: str | None = None,
    ) -> QueryAnswer:
        """Serve a boolean query from the current snapshot (cached).

        Pass ``snapshot`` to pin evaluation to a snapshot the caller
        already holds (stress tests verify the answer against that exact
        snapshot's reference model).  ``tier`` overrides the service's
        ``read_tier`` per call; the immediate tier always evaluates
        against the live buffer's base and ignores a snapshot pin.
        """
        self._count_query("boolean")
        if self._resolve_tier(tier) == "immediate":
            view = self._memtier.view()
            base = view.base
            key = ("imm-boolean", query)
            cached = self.cache.get(
                key,
                base.snapshot_id,
                base.version_vector,
                epoch=view.epoch,
                epoch_clean=self._memtier.clean_since,
            )
            if cached is not None:
                doc_ids, read_ops = cached
                return QueryAnswer(doc_ids=list(doc_ids), read_ops=read_ops)
            answer = twotier.search_boolean(view, query)
            terms, universe_sensitive = _boolean_terms(query)
            self.cache.put(
                key,
                (tuple(answer.doc_ids), answer.read_ops),
                base.snapshot_id,
                terms=terms,
                universe_sensitive=universe_sensitive,
                versions=base.version_vector,
                epoch=view.epoch,
            )
            return answer
        snapshot = snapshot or self._snapshot
        key = ("boolean", query)
        cached = self.cache.get(
            key, snapshot.snapshot_id, snapshot.version_vector
        )
        if cached is not None:
            doc_ids, read_ops = cached
            return QueryAnswer(doc_ids=list(doc_ids), read_ops=read_ops)
        answer = snapshot.search_boolean(query)
        terms, universe_sensitive = _boolean_terms(query)
        self.cache.put(
            key,
            (tuple(answer.doc_ids), answer.read_ops),
            snapshot.snapshot_id,
            terms=terms,
            universe_sensitive=universe_sensitive,
            versions=snapshot.version_vector,
        )
        return answer

    def search_streamed(
        self,
        query: str,
        snapshot: IndexSnapshot | None = None,
        tier: str | None = None,
    ) -> QueryAnswer:
        """Serve a flat AND/OR query from the current snapshot (cached)."""
        self._count_query("streamed")
        if self._resolve_tier(tier) == "immediate":
            view = self._memtier.view()
            base = view.base
            key = ("imm-streamed", query)
            cached = self.cache.get(
                key,
                base.snapshot_id,
                base.version_vector,
                epoch=view.epoch,
                epoch_clean=self._memtier.clean_since,
            )
            if cached is not None:
                doc_ids, read_ops = cached
                return QueryAnswer(doc_ids=list(doc_ids), read_ops=read_ops)
            answer = twotier.search_streamed(view, query)
            self.cache.put(
                key,
                (tuple(answer.doc_ids), answer.read_ops),
                base.snapshot_id,
                terms=_streamed_terms(query),
                versions=base.version_vector,
                epoch=view.epoch,
            )
            return answer
        snapshot = snapshot or self._snapshot
        key = ("streamed", query)
        cached = self.cache.get(
            key, snapshot.snapshot_id, snapshot.version_vector
        )
        if cached is not None:
            doc_ids, read_ops = cached
            return QueryAnswer(doc_ids=list(doc_ids), read_ops=read_ops)
        answer = snapshot.search_streamed(query)
        self.cache.put(
            key,
            (tuple(answer.doc_ids), answer.read_ops),
            snapshot.snapshot_id,
            terms=_streamed_terms(query),
            versions=snapshot.version_vector,
        )
        return answer

    def search_vector(
        self,
        weights: dict[str, float],
        top_k: int = 10,
        snapshot: IndexSnapshot | None = None,
        tier: str | None = None,
    ) -> list[ScoredDocument]:
        """Serve a ranked vector query from the current snapshot (cached)."""
        self._count_query("vector")
        query_key = (tuple(sorted(weights.items())), top_k)
        if self._resolve_tier(tier) == "immediate":
            view = self._memtier.view()
            base = view.base
            key = ("imm-vector", query_key)
            cached = self.cache.get(
                key,
                base.snapshot_id,
                base.version_vector,
                epoch=view.epoch,
                epoch_clean=self._memtier.clean_since,
            )
            if cached is not None:
                return list(cached)
            ranked, _ = twotier.search_vector_counted(
                view, weights, top_k=top_k
            )
            self.cache.put(
                key,
                tuple(ranked),
                base.snapshot_id,
                terms=frozenset(w.lower() for w in weights),
                universe_sensitive=True,
                versions=base.version_vector,
                epoch=view.epoch,
            )
            return ranked
        snapshot = snapshot or self._snapshot
        key = ("vector", query_key)
        cached = self.cache.get(
            key, snapshot.snapshot_id, snapshot.version_vector
        )
        if cached is not None:
            return list(cached)
        ranked = snapshot.search_vector(weights, top_k=top_k)
        # Ranking normalizes by idf(ndocs): universe-sensitive.
        self.cache.put(
            key,
            tuple(ranked),
            snapshot.snapshot_id,
            terms=frozenset(w.lower() for w in weights),
            universe_sensitive=True,
            versions=snapshot.version_vector,
        )
        return ranked


class BackgroundMerger:
    """Drains the memory tier through the normal flush/publish path.

    A daemon thread that watches the service's memory tier and calls
    :meth:`QueryService.flush_and_publish` whenever enough work has
    accumulated (``min_sealed`` sealed segments, or ``min_buffered``
    buffered documents).  The merge is the *existing* flush: it takes the
    writer lock, so ingest briefly queues behind a merge, but readers
    never block — they keep serving the memory tier's view throughout,
    and the publish-then-rebase sequence keeps immediate answers
    invariant across the boundary (DESIGN.md §14).

    Flush failures under fault injection are counted and retried on the
    next tick — the service's own recovery machinery already replays the
    batch, so a failed merge leaves the tier intact and merely defers
    visibility compaction.
    """

    def __init__(
        self,
        service: QueryService,
        *,
        interval: float = 0.02,
        min_sealed: int = 1,
        min_buffered: int | None = None,
    ) -> None:
        if service.memtier is None:
            raise ValueError(
                "background merge requires a service with "
                "read_tier='immediate'"
            )
        if interval <= 0:
            raise ValueError("interval must be > 0")
        self.service = service
        self.interval = interval
        self.min_sealed = min_sealed
        self.min_buffered = min_buffered
        self.merges = 0
        self.errors = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def _due(self) -> bool:
        view = self.service.memtier.view()
        if view.is_empty():
            return False
        if len(view.sealed) >= self.min_sealed:
            return True
        if (
            self.min_buffered is not None
            and view.buffered_docs >= self.min_buffered
        ):
            return True
        # Tombstones have no segment of their own; drain them too.
        return bool(view.tombstones)

    def _merge_once(self) -> bool:
        try:
            self.service.flush_and_publish()
            self.merges += 1
            return True
        except Exception:
            self.errors += 1
            return False

    def _run(self) -> None:
        while not self._stop.is_set():
            if self._due():
                self._merge_once()
            self._stop.wait(self.interval)

    def start(self) -> "BackgroundMerger":
        self._thread = threading.Thread(
            target=self._run, name="memtier-merger", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop the merge loop; with ``drain`` flush whatever remains."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        if drain and not self.service.memtier.view().is_empty():
            self._merge_once()

    def stats(self) -> dict:
        return {"merges": self.merges, "errors": self.errors}
