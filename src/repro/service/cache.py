"""Snapshot-keyed LRU cache for query results.

A result computed against snapshot *S* is valid exactly as long as *S* is
the published snapshot: the dual-structure index only changes at batch
boundaries, and the service publishes a fresh immutable snapshot at each
flush.  So the cache keys every entry by ``(snapshot_id, kind, query)``
and the service drops the whole cache wholesale at publish time — there is
no per-entry invalidation problem to solve, which is the payoff of
snapshot isolation.

Thread model: many reader threads share one cache; every operation takes
the internal lock (the critical sections are dictionary operations, far
cheaper than the query evaluation a hit saves).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

CacheKey = tuple[int, str, object]


@dataclass
class CacheStats:
    """Aggregate counters plus the per-entry hit ledger."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    entries_invalidated: int = 0
    #: hits per live entry (reset wholesale with the entries themselves).
    entry_hits: dict[CacheKey, int] = field(default_factory=dict)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "entries_invalidated": self.entries_invalidated,
            "hit_rate": round(self.hit_rate, 6),
        }


class QueryResultCache:
    """A bounded LRU map from ``(snapshot_id, kind, query)`` to results.

    ``get``/``put`` never copy values — the service stores immutable
    tuples, so a cached answer can be shared across readers safely.
    """

    _MISS = object()

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[CacheKey, object]" = OrderedDict()
        self._stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: CacheKey):
        """The cached value for ``key`` or ``None``; counts the outcome."""
        with self._lock:
            value = self._entries.get(key, self._MISS)
            if value is self._MISS:
                self._stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self._stats.hits += 1
            self._stats.entry_hits[key] = (
                self._stats.entry_hits.get(key, 0) + 1
            )
            return value

    def put(self, key: CacheKey, value) -> None:
        """Insert (or refresh) an entry, evicting the LRU tail if full."""
        if self.capacity == 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                evicted, _ = self._entries.popitem(last=False)
                self._stats.evictions += 1
                self._stats.entry_hits.pop(evicted, None)

    def invalidate(self) -> int:
        """Drop every entry (a new snapshot was published); returns the
        number of entries dropped."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._stats.entry_hits.clear()
            self._stats.invalidations += 1
            self._stats.entries_invalidated += dropped
            return dropped

    def stats(self) -> CacheStats:
        """A point-in-time copy of the counters (safe to read anywhere)."""
        with self._lock:
            return CacheStats(
                hits=self._stats.hits,
                misses=self._stats.misses,
                evictions=self._stats.evictions,
                invalidations=self._stats.invalidations,
                entries_invalidated=self._stats.entries_invalidated,
                entry_hits=dict(self._stats.entry_hits),
            )
