"""Delta-scoped LRU cache for query results.

A result computed against snapshot *S* stays valid across a publish
whenever the batch that produced snapshot *S+1* provably could not have
changed it.  The dual-structure index only changes at batch boundaries,
and the writer's delta journal records exactly which vocabulary terms a
batch touched — so instead of dropping the whole cache at publish time,
the service *extends* every entry whose terms are disjoint from the
batch's dirty vocabulary (and whose answer does not depend on the
document universe when the universe grew).

The correctness argument (DESIGN.md §11): an answer depends only on

* the postings of the terms it read — unchanged unless a term is in the
  batch's dirty vocabulary (which includes words newly added, so a term
  that previously missed the vocabulary is also caught);
* the deletion filter set — any deletion change evicts everything
  (``deletions_changed``);
* for universe-sensitive queries (boolean ``NOT``, vector ranking whose
  idf uses ``ndocs``), the doc-id universe — any batch that adds
  documents evicts those (``universe_changed``).

Entries therefore carry a *validity interval* ``[first_id, last_id]`` of
snapshot ids; :meth:`publish_delta` extends clean entries to the new id
and drops the rest.  Readers pinned to an older snapshot simply miss —
an entry is never returned for a snapshot outside its interval.

Thread model: many reader threads share one cache; every operation takes
the internal lock (the critical sections are dictionary operations, far
cheaper than the query evaluation a hit saves).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

#: ``(kind, query_key)`` — snapshot validity lives in the entry, not the key.
CacheKey = tuple[str, object]


@dataclass
class CacheStats:
    """Aggregate counters plus the per-entry hit ledger."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    entries_invalidated: int = 0
    entries_retained: int = 0
    #: hits per live entry (dropped with the entries themselves).
    entry_hits: dict[CacheKey, int] = field(default_factory=dict)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "entries_invalidated": self.entries_invalidated,
            "entries_retained": self.entries_retained,
            "hit_rate": round(self.hit_rate, 6),
        }


class _Entry:
    __slots__ = (
        "value",
        "terms",
        "universe_sensitive",
        "first_id",
        "last_id",
        "versions",
    )

    def __init__(self, value, terms, universe_sensitive, snapshot_id, versions):
        self.value = value
        self.terms = terms
        self.universe_sensitive = universe_sensitive
        self.first_id = snapshot_id
        self.last_id = snapshot_id
        # The shard-snapshot vector (per-shard batch counters) of the
        # newest snapshot this entry is valid at; publish_delta advances
        # it alongside last_id.
        self.versions = versions


class QueryResultCache:
    """A bounded LRU map from ``(kind, query)`` to validity-ranged results.

    ``get``/``put`` never copy values — the service stores immutable
    tuples, so a cached answer can be shared across readers safely.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[CacheKey, _Entry]" = OrderedDict()
        self._stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(
        self,
        key: CacheKey,
        snapshot_id: int,
        versions: tuple[int, ...] | None = None,
    ):
        """The cached value for ``key`` valid at ``snapshot_id``, or
        ``None``; counts the outcome.

        ``versions`` is the caller's shard-snapshot vector: when given
        and the lookup lands on the entry's newest snapshot, the vectors
        must agree — a mismatch (shard layout change, out-of-band shard
        advance) drops the entry instead of serving it.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or not (
                entry.first_id <= snapshot_id <= entry.last_id
            ):
                self._stats.misses += 1
                return None
            if (
                versions is not None
                and entry.versions is not None
                and snapshot_id == entry.last_id
                and entry.versions != versions
            ):
                del self._entries[key]
                self._stats.entry_hits.pop(key, None)
                self._stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self._stats.hits += 1
            self._stats.entry_hits[key] = (
                self._stats.entry_hits.get(key, 0) + 1
            )
            return entry.value

    def put(
        self,
        key: CacheKey,
        value,
        snapshot_id: int,
        terms: frozenset = frozenset(),
        universe_sensitive: bool = False,
        versions: tuple[int, ...] | None = None,
    ) -> None:
        """Insert an entry valid (for now) only at ``snapshot_id``.

        ``terms`` are the query's vocabulary terms (lowercase) and
        ``universe_sensitive`` marks answers that depend on the doc-id
        universe; both drive :meth:`publish_delta`.  ``versions`` records
        the snapshot's shard vector.  A put from a reader pinned to an
        *older* snapshot never displaces a fresher entry.
        """
        if self.capacity == 0:
            return
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                if existing.last_id >= snapshot_id:
                    self._entries.move_to_end(key)
                    return
                self._entries.move_to_end(key)
            self._entries[key] = _Entry(
                value, terms, universe_sensitive, snapshot_id, versions
            )
            while len(self._entries) > self.capacity:
                evicted, _ = self._entries.popitem(last=False)
                self._stats.evictions += 1
                self._stats.entry_hits.pop(evicted, None)

    def publish_delta(
        self,
        new_id: int,
        dirty_terms: frozenset,
        universe_changed: bool,
        deletions_changed: bool,
        versions: tuple[int, ...] | None = None,
    ) -> int:
        """Apply one publish's delta: extend clean entries to ``new_id``,
        drop dirty and stranded ones; returns the number dropped.

        An entry is *clean* when it was valid at ``new_id - 1``, none of
        its terms intersect ``dirty_terms``, the deletion set did not
        change, and (if universe-sensitive) no documents were added.
        Extended entries adopt ``versions``, the new snapshot's shard
        vector.
        """
        prev_id = new_id - 1
        with self._lock:
            dropped = retained = 0
            for key in list(self._entries):
                entry = self._entries[key]
                if (
                    entry.last_id != prev_id
                    or deletions_changed
                    or (universe_changed and entry.universe_sensitive)
                    or not entry.terms.isdisjoint(dirty_terms)
                ):
                    del self._entries[key]
                    self._stats.entry_hits.pop(key, None)
                    dropped += 1
                else:
                    entry.last_id = new_id
                    if versions is not None:
                        entry.versions = versions
                    retained += 1
            self._stats.invalidations += 1
            self._stats.entries_invalidated += dropped
            self._stats.entries_retained += retained
            return dropped

    def invalidate(self) -> int:
        """Drop every entry (wholesale — the clone-mode publish path and
        the cow fallback); returns the number of entries dropped."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._stats.entry_hits.clear()
            self._stats.invalidations += 1
            self._stats.entries_invalidated += dropped
            return dropped

    def stats(self) -> CacheStats:
        """A point-in-time copy of the counters (safe to read anywhere)."""
        with self._lock:
            return CacheStats(
                hits=self._stats.hits,
                misses=self._stats.misses,
                evictions=self._stats.evictions,
                invalidations=self._stats.invalidations,
                entries_invalidated=self._stats.entries_invalidated,
                entries_retained=self._stats.entries_retained,
                entry_hits=dict(self._stats.entry_hits),
            )
