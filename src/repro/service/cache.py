"""Delta-scoped LRU cache for query results.

A result computed against snapshot *S* stays valid across a publish
whenever the batch that produced snapshot *S+1* provably could not have
changed it.  The dual-structure index only changes at batch boundaries,
and the writer's delta journal records exactly which vocabulary terms a
batch touched — so instead of dropping the whole cache at publish time,
the service *extends* every entry whose terms are disjoint from the
batch's dirty vocabulary (and whose answer does not depend on the
document universe when the universe grew).

The correctness argument (DESIGN.md §11): an answer depends only on

* the postings of the terms it read — unchanged unless a term is in the
  batch's dirty vocabulary (which includes words newly added, so a term
  that previously missed the vocabulary is also caught);
* the deletion filter set — any deletion change evicts everything
  (``deletions_changed``);
* for universe-sensitive queries (boolean ``NOT``, vector ranking whose
  idf uses ``ndocs``), the doc-id universe — any batch that adds
  documents evicts those (``universe_changed``).

Entries therefore carry a *validity interval* ``[first_id, last_id]`` of
snapshot ids; :meth:`publish_delta` extends clean entries to the new id
and drops the rest.  Readers pinned to an older snapshot simply miss —
an entry is never returned for a snapshot outside its interval.

Immediate-tier entries (DESIGN.md §14) additionally carry the memory-tier
*epoch* they were computed at.  The memory tier mutates between
publishes, so snapshot-interval validity is not enough; instead of
invalidating eagerly on every buffered write, a lookup whose epoch moved
on *revalidates* the entry against the tier's per-term epoch ledger
(``epoch_clean`` callback): if no term the answer read was buffered
since, the deletion set did not change, and (for universe-sensitive
answers) no document arrived, the entry is stamped with the current
epoch and served — otherwise it is dropped.  This is exactly
:meth:`publish_delta`'s cleanliness rule applied lazily per entry, with
the tier's epoch ledger standing in for the writer's delta journal.

Thread model: many reader threads share one cache; every operation takes
the internal lock (the critical sections are dictionary operations, far
cheaper than the query evaluation a hit saves).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

#: ``(kind, query_key)`` — snapshot validity lives in the entry, not the key.
CacheKey = tuple[str, object]


@dataclass
class CacheStats:
    """Aggregate counters plus the per-entry hit ledger."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    entries_invalidated: int = 0
    entries_retained: int = 0
    epoch_revalidations: int = 0
    epoch_invalidations: int = 0
    #: hits per live entry (dropped with the entries themselves).
    entry_hits: dict[CacheKey, int] = field(default_factory=dict)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "entries_invalidated": self.entries_invalidated,
            "entries_retained": self.entries_retained,
            "epoch_revalidations": self.epoch_revalidations,
            "epoch_invalidations": self.epoch_invalidations,
            "hit_rate": round(self.hit_rate, 6),
        }


class _Entry:
    __slots__ = (
        "value",
        "terms",
        "universe_sensitive",
        "first_id",
        "last_id",
        "versions",
        "epoch",
    )

    def __init__(
        self, value, terms, universe_sensitive, snapshot_id, versions, epoch
    ):
        self.value = value
        self.terms = terms
        self.universe_sensitive = universe_sensitive
        self.first_id = snapshot_id
        self.last_id = snapshot_id
        # The shard-snapshot vector (per-shard batch counters) of the
        # newest snapshot this entry is valid at; publish_delta advances
        # it alongside last_id.
        self.versions = versions
        # Memory-tier epoch the answer was computed at (None for
        # snapshot-tier entries); advanced in place when a lookup
        # revalidates the entry against the tier's epoch ledger.
        self.epoch = epoch


class QueryResultCache:
    """A bounded LRU map from ``(kind, query)`` to validity-ranged results.

    ``get``/``put`` never copy values — the service stores immutable
    tuples, so a cached answer can be shared across readers safely.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[CacheKey, _Entry]" = OrderedDict()
        self._stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(
        self,
        key: CacheKey,
        snapshot_id: int,
        versions: tuple[int, ...] | None = None,
        epoch: int | None = None,
        epoch_clean=None,
    ):
        """The cached value for ``key`` valid at ``snapshot_id``, or
        ``None``; counts the outcome.

        ``versions`` is the caller's shard-snapshot vector: when given
        and the lookup lands on the entry's newest snapshot, the vectors
        must agree — a mismatch (shard layout change, out-of-band shard
        advance) drops the entry instead of serving it.  Callers on a
        rebalancable topology prefix the vector with the routing-table
        epoch (:attr:`IndexSnapshot.version_vector`), so an answer
        computed before a shard split or merge — same per-shard
        counters, different document placement — can never be served
        after one: the epoch component (or the vector length itself)
        disagrees.

        ``epoch`` is the live memory-tier epoch for immediate-tier
        lookups.  When it differs from the entry's recorded epoch the
        entry is lazily revalidated via ``epoch_clean(terms, since_epoch,
        universe_sensitive)`` — the tier's per-term ledger check; a clean
        entry is re-stamped and served, a dirty one dropped.  Without a
        callback an epoch mismatch simply drops the entry.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or not (
                entry.first_id <= snapshot_id <= entry.last_id
            ):
                self._stats.misses += 1
                return None
            if (
                versions is not None
                and entry.versions is not None
                and snapshot_id == entry.last_id
                and entry.versions != versions
            ):
                del self._entries[key]
                self._stats.entry_hits.pop(key, None)
                self._stats.misses += 1
                return None
            if epoch is not None and entry.epoch != epoch:
                clean = (
                    entry.epoch is not None
                    and epoch_clean is not None
                    and epoch_clean(
                        entry.terms, entry.epoch, entry.universe_sensitive
                    )
                )
                if not clean:
                    del self._entries[key]
                    self._stats.entry_hits.pop(key, None)
                    self._stats.epoch_invalidations += 1
                    self._stats.misses += 1
                    return None
                entry.epoch = epoch
                self._stats.epoch_revalidations += 1
            self._entries.move_to_end(key)
            self._stats.hits += 1
            self._stats.entry_hits[key] = (
                self._stats.entry_hits.get(key, 0) + 1
            )
            return entry.value

    def put(
        self,
        key: CacheKey,
        value,
        snapshot_id: int,
        terms: frozenset = frozenset(),
        universe_sensitive: bool = False,
        versions: tuple[int, ...] | None = None,
        epoch: int | None = None,
    ) -> None:
        """Insert an entry valid (for now) only at ``snapshot_id``.

        ``terms`` are the query's vocabulary terms (lowercase) and
        ``universe_sensitive`` marks answers that depend on the doc-id
        universe; both drive :meth:`publish_delta`.  ``versions`` records
        the snapshot's shard vector, ``epoch`` the memory-tier epoch for
        immediate-tier answers.  A put from a reader pinned to an *older*
        snapshot never displaces a fresher entry.
        """
        if self.capacity == 0:
            return
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                if existing.last_id >= snapshot_id:
                    self._entries.move_to_end(key)
                    return
                self._entries.move_to_end(key)
            self._entries[key] = _Entry(
                value, terms, universe_sensitive, snapshot_id, versions, epoch
            )
            while len(self._entries) > self.capacity:
                evicted, _ = self._entries.popitem(last=False)
                self._stats.evictions += 1
                self._stats.entry_hits.pop(evicted, None)

    def publish_delta(
        self,
        new_id: int,
        dirty_terms: frozenset,
        universe_changed: bool,
        deletions_changed: bool,
        versions: tuple[int, ...] | None = None,
    ) -> int:
        """Apply one publish's delta: extend clean entries to ``new_id``,
        drop dirty and stranded ones; returns the number dropped.

        An entry is *clean* when it was valid at ``new_id - 1``, none of
        its terms intersect ``dirty_terms``, the deletion set did not
        change, and (if universe-sensitive) no documents were added.
        Extended entries adopt ``versions``, the new snapshot's shard
        vector.
        """
        prev_id = new_id - 1
        with self._lock:
            dropped = retained = 0
            for key in list(self._entries):
                entry = self._entries[key]
                if (
                    entry.last_id != prev_id
                    or deletions_changed
                    or (universe_changed and entry.universe_sensitive)
                    or not entry.terms.isdisjoint(dirty_terms)
                ):
                    del self._entries[key]
                    self._stats.entry_hits.pop(key, None)
                    dropped += 1
                else:
                    entry.last_id = new_id
                    if versions is not None:
                        entry.versions = versions
                    retained += 1
            self._stats.invalidations += 1
            self._stats.entries_invalidated += dropped
            self._stats.entries_retained += retained
            return dropped

    def invalidate(self) -> int:
        """Drop every entry (wholesale — the clone-mode publish path and
        the cow fallback); returns the number of entries dropped."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._stats.entry_hits.clear()
            self._stats.invalidations += 1
            self._stats.entries_invalidated += dropped
            return dropped

    def stats(self) -> CacheStats:
        """A point-in-time copy of the counters (safe to read anywhere)."""
        with self._lock:
            return CacheStats(
                hits=self._stats.hits,
                misses=self._stats.misses,
                evictions=self._stats.evictions,
                invalidations=self._stats.invalidations,
                entries_invalidated=self._stats.entries_invalidated,
                entries_retained=self._stats.entries_retained,
                epoch_revalidations=self._stats.epoch_revalidations,
                epoch_invalidations=self._stats.epoch_invalidations,
                entry_hits=dict(self._stats.entry_hits),
            )
