"""Length-prefixed wire protocol between the gateway and shard workers.

One frame carries one message::

    +-------+----------+------------------+
    | magic | length   | payload          |
    | 4 B   | 4 B (BE) | ``length`` bytes |
    +-------+----------+------------------+

The payload is a pickled :class:`Request` or :class:`Response`.  Pickle is
acceptable here because both ends of every connection are processes this
library spawned itself (a ``socketpair`` shared with a child) — the wire
is a private process boundary, not a network service.  What the framing
layer *does* defend against is a sick peer: every decoder rejects frames
with a bad magic, frames whose declared length exceeds the receiver's
budget (:class:`FrameTooLarge` — an oversized frame is refused before a
byte of its payload is read), and streams that end mid-frame
(:class:`TruncatedFrame` — a worker that died mid-write must surface as a
typed error, not a hang or a garbage unpickle).

A clean EOF *between* frames is not an error: readers return ``None`` so
callers can distinguish "the peer closed the conversation" from "the peer
died mid-sentence".
"""

from __future__ import annotations

import pickle
import struct
from dataclasses import dataclass
from typing import Any

MAGIC = b"RSW1"
_HEADER = struct.Struct(">4sI")
HEADER_BYTES = _HEADER.size

#: Default ceiling on one frame's payload.  Checkpoint blobs of the test
#: corpora are well under a megabyte; 64 MiB leaves room for real ones.
DEFAULT_MAX_FRAME = 64 * 1024 * 1024


class WireError(Exception):
    """Base class for framing-level failures."""


class BadFrame(WireError):
    """The frame header's magic bytes are wrong (desynchronized stream)."""


class FrameTooLarge(WireError):
    """A frame's declared payload exceeds the receiver's budget."""


class TruncatedFrame(WireError):
    """The stream ended in the middle of a frame (peer died mid-write)."""


@dataclass(frozen=True)
class Request:
    """One method invocation sent to a shard worker."""

    request_id: int
    method: str
    args: tuple = ()


@dataclass(frozen=True)
class Response:
    """A worker's reply; ``error`` carries ``TypeName: detail`` on failure."""

    request_id: int
    ok: bool
    value: Any = None
    error: str | None = None


def encode(message, max_frame: int = DEFAULT_MAX_FRAME) -> bytes:
    """Serialize one message into a complete frame."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > max_frame:
        raise FrameTooLarge(
            f"message of {len(payload)} bytes exceeds the "
            f"{max_frame}-byte frame budget"
        )
    return _HEADER.pack(MAGIC, len(payload)) + payload


def decode_header(header: bytes, max_frame: int = DEFAULT_MAX_FRAME) -> int:
    """Validate a frame header; returns the payload length it declares."""
    if len(header) != HEADER_BYTES:
        raise TruncatedFrame(
            f"{len(header)}-byte header (need {HEADER_BYTES})"
        )
    magic, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise BadFrame(f"bad frame magic {magic!r}")
    if length > max_frame:
        raise FrameTooLarge(
            f"declared payload of {length} bytes exceeds the "
            f"{max_frame}-byte frame budget"
        )
    return length


def decode_payload(payload: bytes):
    """Unpickle one complete frame payload."""
    return pickle.loads(payload)


def decode(frame: bytes, max_frame: int = DEFAULT_MAX_FRAME):
    """Decode one complete frame (header + payload) into its message."""
    length = decode_header(frame[:HEADER_BYTES], max_frame)
    payload = frame[HEADER_BYTES:]
    if len(payload) < length:
        raise TruncatedFrame(
            f"frame declares {length} payload bytes, got {len(payload)}"
        )
    return decode_payload(payload[:length])


# -- blocking socket I/O (worker side) -----------------------------------------


def _recv_exact(sock, n: int) -> bytes | None:
    """Read exactly ``n`` bytes; ``None`` on EOF at a frame boundary."""
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if not chunks:
                return None
            raise TruncatedFrame(
                f"stream ended {remaining} bytes short of a "
                f"{n}-byte read"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock, max_frame: int = DEFAULT_MAX_FRAME):
    """Read one message from a blocking socket.

    Returns ``None`` on a clean EOF between frames; raises
    :class:`TruncatedFrame` when the stream dies inside one.
    """
    header = _recv_exact(sock, HEADER_BYTES)
    if header is None:
        return None
    length = decode_header(header, max_frame)
    payload = _recv_exact(sock, length) if length else b""
    if length and payload is None:
        raise TruncatedFrame(f"EOF before a {length}-byte payload")
    return decode_payload(payload)


def send_message(sock, message, max_frame: int = DEFAULT_MAX_FRAME) -> None:
    """Write one message to a blocking socket as a single frame."""
    sock.sendall(encode(message, max_frame))


# -- asyncio stream I/O (gateway side) -----------------------------------------


async def read_message_async(reader, max_frame: int = DEFAULT_MAX_FRAME):
    """Read one message from an :class:`asyncio.StreamReader`.

    Returns ``None`` on a clean EOF between frames; raises
    :class:`TruncatedFrame` when the worker died mid-frame.
    """
    import asyncio

    try:
        header = await reader.readexactly(HEADER_BYTES)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise TruncatedFrame(
            f"EOF after {len(exc.partial)} header bytes"
        ) from exc
    length = decode_header(header, max_frame)
    if not length:
        return decode_payload(b"")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise TruncatedFrame(
            f"EOF {length - len(exc.partial)} bytes short of a "
            f"{length}-byte payload"
        ) from exc
    return decode_payload(payload)
