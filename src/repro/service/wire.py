"""Length-prefixed wire protocol between the gateway and shard workers.

One frame carries one message::

    +-------+----------+------------------+
    | magic | length   | payload          |
    | 4 B   | 4 B (BE) | ``length`` bytes |
    +-------+----------+------------------+

The payload is a pickled :class:`Request` or :class:`Response`.  Pickle is
acceptable here because both ends of every connection are processes this
library spawned itself (a ``socketpair`` shared with a child) — the wire
is a private process boundary, not a network service.  What the framing
layer *does* defend against is a sick peer: every decoder rejects frames
with a bad magic, frames whose declared length exceeds the receiver's
budget (:class:`FrameTooLarge` — an oversized frame is refused before a
byte of its payload is read), and streams that end mid-frame
(:class:`TruncatedFrame` — a worker that died mid-write must surface as a
typed error, not a hang or a garbage unpickle).

A clean EOF *between* frames is not an error: readers return ``None`` so
callers can distinguish "the peer closed the conversation" from "the peer
died mid-sentence".
"""

from __future__ import annotations

import pickle
import struct
from dataclasses import dataclass
from typing import Any

MAGIC = b"RSW1"
_HEADER = struct.Struct(">4sI")
HEADER_BYTES = _HEADER.size

#: Default ceiling on one frame's payload.  Checkpoint blobs of the test
#: corpora are well under a megabyte; 64 MiB leaves room for real ones.
DEFAULT_MAX_FRAME = 64 * 1024 * 1024


class WireError(Exception):
    """Base class for framing-level failures."""


class BadFrame(WireError):
    """The frame header's magic bytes are wrong (desynchronized stream)."""


class FrameTooLarge(WireError):
    """A frame's declared payload exceeds the receiver's budget."""


class TruncatedFrame(WireError):
    """The stream ended in the middle of a frame (peer died mid-write)."""


@dataclass(frozen=True)
class Request:
    """One method invocation sent to a shard worker."""

    request_id: int
    method: str
    args: tuple = ()


@dataclass(frozen=True)
class Response:
    """A worker's reply; ``error`` carries ``TypeName: detail`` on failure."""

    request_id: int
    ok: bool
    value: Any = None
    error: str | None = None


@dataclass(frozen=True)
class BatchRequest:
    """Many member reads in one frame (the gateway's micro-batch).

    ``requests`` holds plain :class:`Request` members whose ids are batch
    ordinals — the envelope's ``request_id`` is the one that matters for
    reply matching on the connection.  Members must be read methods: the
    worker evaluates all of them against one pinned published state and
    stamps the whole batch with a single version vector entry.
    """

    request_id: int
    requests: tuple = ()


@dataclass(frozen=True)
class BatchResponse:
    """One reply frame answering every member of a :class:`BatchRequest`.

    ``responses`` aligns index-for-index with the request's members; a
    member that failed carries its own ``error`` so one poison query
    cannot fail its batchmates.  ``version``/``mem_epoch`` stamp the one
    worker state every member evaluated against.
    """

    request_id: int
    responses: tuple = ()
    version: int = 0
    mem_epoch: int = 0


def encode_parts(
    message, max_frame: int = DEFAULT_MAX_FRAME
) -> tuple[bytes, bytes]:
    """Serialize one message into ``(header, payload)`` without joining.

    Callers that can issue scatter writes (``sendmsg``, stream-writer
    buffering) avoid the full extra copy ``header + payload`` would cost
    on multi-MB checkpoint blobs.
    """
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > max_frame:
        raise FrameTooLarge(
            f"message of {len(payload)} bytes exceeds the "
            f"{max_frame}-byte frame budget"
        )
    return _HEADER.pack(MAGIC, len(payload)), payload


def encode(message, max_frame: int = DEFAULT_MAX_FRAME) -> bytes:
    """Serialize one message into a complete frame."""
    header, payload = encode_parts(message, max_frame)
    return header + payload


def decode_header(header: bytes, max_frame: int = DEFAULT_MAX_FRAME) -> int:
    """Validate a frame header; returns the payload length it declares."""
    if len(header) != HEADER_BYTES:
        raise TruncatedFrame(
            f"{len(header)}-byte header (need {HEADER_BYTES})"
        )
    magic, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise BadFrame(f"bad frame magic {magic!r}")
    if length > max_frame:
        raise FrameTooLarge(
            f"declared payload of {length} bytes exceeds the "
            f"{max_frame}-byte frame budget"
        )
    return length


def decode_payload(payload: bytes):
    """Unpickle one complete frame payload."""
    return pickle.loads(payload)


def decode(frame: bytes, max_frame: int = DEFAULT_MAX_FRAME):
    """Decode one complete frame (header + payload) into its message."""
    length = decode_header(frame[:HEADER_BYTES], max_frame)
    payload = frame[HEADER_BYTES:]
    if len(payload) < length:
        raise TruncatedFrame(
            f"frame declares {length} payload bytes, got {len(payload)}"
        )
    return decode_payload(payload[:length])


# -- blocking socket I/O (worker side) -----------------------------------------


def _recv_exact(sock, n: int):
    """Read exactly ``n`` bytes; ``None`` on EOF at a frame boundary.

    Fills one preallocated buffer via ``recv_into`` — no chunk list, no
    ``join`` copy — and returns it as a ``bytearray`` (``struct`` and
    ``pickle`` both accept any bytes-like object).
    """
    if not n:
        return bytearray()
    buf = bytearray(n)
    view = memoryview(buf)
    received = 0
    while received < n:
        got = sock.recv_into(view[received:])
        if not got:
            if not received:
                return None
            raise TruncatedFrame(
                f"stream ended {n - received} bytes short of a "
                f"{n}-byte read"
            )
        received += got
    return buf


def recv_message(sock, max_frame: int = DEFAULT_MAX_FRAME):
    """Read one message from a blocking socket.

    Returns ``None`` on a clean EOF between frames; raises
    :class:`TruncatedFrame` when the stream dies inside one.
    """
    header = _recv_exact(sock, HEADER_BYTES)
    if header is None:
        return None
    length = decode_header(header, max_frame)
    payload = _recv_exact(sock, length) if length else b""
    if length and payload is None:
        raise TruncatedFrame(f"EOF before a {length}-byte payload")
    return decode_payload(payload)


def send_message(sock, message, max_frame: int = DEFAULT_MAX_FRAME) -> None:
    """Write one message to a blocking socket as a single frame.

    Header and payload go out as a scatter write (``sendmsg``) so the
    payload — which for checkpoint replies is a multi-MB blob — is never
    copied into a joined ``header + payload`` buffer.  Platforms without
    ``sendmsg`` fall back to two ``sendall`` calls (still copy-free).
    """
    header, payload = encode_parts(message, max_frame)
    sendmsg = getattr(sock, "sendmsg", None)
    if sendmsg is None:  # pragma: no cover - non-POSIX sockets
        sock.sendall(header)
        sock.sendall(payload)
        return
    buffers = [memoryview(header), memoryview(payload)]
    while buffers:
        sent = sendmsg(buffers)
        while sent:
            head = buffers[0]
            if sent >= len(head):
                sent -= len(head)
                buffers.pop(0)
            else:
                buffers[0] = head[sent:]
                sent = 0
        while buffers and not len(buffers[0]):
            buffers.pop(0)


# -- asyncio stream I/O (gateway side) -----------------------------------------


async def read_message_async(reader, max_frame: int = DEFAULT_MAX_FRAME):
    """Read one message from an :class:`asyncio.StreamReader`.

    Returns ``None`` on a clean EOF between frames; raises
    :class:`TruncatedFrame` when the worker died mid-frame.
    """
    import asyncio

    try:
        header = await reader.readexactly(HEADER_BYTES)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise TruncatedFrame(
            f"EOF after {len(exc.partial)} header bytes"
        ) from exc
    length = decode_header(header, max_frame)
    if not length:
        return decode_payload(b"")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise TruncatedFrame(
            f"EOF {length - len(exc.partial)} bytes short of a "
            f"{length}-byte payload"
        ) from exc
    return decode_payload(payload)
