"""The shard-worker process: one OS process owning one index volume.

Each worker runs :func:`worker_main` in its own process and owns a
complete :class:`~repro.textindex.TextDocumentIndex` end-to-end: ingest,
flush (with in-worker crash recovery for injected faults), snapshot
publication (full clone or incremental copy-on-write, exactly the
:mod:`repro.service.server` publish protocol), and query evaluation.
Queries are answered from the worker's *published* snapshot, never the
live writer, so the visibility contract matches the in-process service:
a document becomes queryable at the flush that publishes it.

The worker speaks the :mod:`repro.service.wire` protocol over one
inherited socket and processes requests strictly in order — a worker is
single-threaded on purpose.  Cross-shard concurrency comes from running
many workers; the gateway's per-shard connection serialization matches
this capacity exactly, so a request's deadline covers its queue wait.

Failure model: two distinct kinds of death are exercised.

* **Injected faults that the volume survives** — transient I/O errors
  and recoverable crashes under ``IndexConfig(crash_safe=True)`` — are
  retried *inside* the worker through ``recover(replay=True)``, the same
  rollback-and-replay loop the in-process service runs.
* **Process death** (``kill_on_crash=True`` turns an
  :class:`~repro.storage.faults.InjectedCrash` at a named crash point
  into ``SIGKILL`` of the worker itself, emulating a machine dying
  mid-flush) is unsurvivable by design: the gateway detects the broken
  connection and rebuilds a fresh worker from its parent-side checkpoint
  plus the replayed op log (:mod:`repro.service.gateway`).
"""

from __future__ import annotations

import io
import os
import signal
import time
from dataclasses import dataclass, field

from ..core.checkpoint import CheckpointError
from ..core.index import IndexConfig
from ..core.invariants import InvariantError
from ..core.memtier import MemTier
from ..core.rebalance import BucketGrower
from ..query import twotier
from ..storage import faults
from ..storage.faults import FaultPlan, InjectedCrash, TransientIOError
from ..text.tokenizer import tokenize_document
from ..textindex import TextDocumentIndex
from . import wire


@dataclass
class WorkerSpec:
    """Everything needed to (re)build one shard worker, picklable so it
    can cross the process boundary and be respawned verbatim after a
    failover (minus the fault plan — a respawn is a fresh machine)."""

    shard_id: int
    index_config: IndexConfig | None = None
    tokenizer_config: object = None
    region_rules: object = None
    publish_mode: str = "cow"
    #: Serialized :meth:`TextDocumentIndex.save` blob to restore from.
    restore: bytes | None = None
    #: Crash/fault schedule installed in the worker process.
    fault_plan: FaultPlan | None = None
    #: Turn an ``InjectedCrash`` into SIGKILL of the worker process.
    kill_on_crash: bool = False
    check_invariants: bool = False
    max_flush_retries: int = 8
    #: Decoded-chunk buffer cache blocks per publish (0 = no cache).
    buffer_cache_blocks: int = 0
    max_frame: int = wire.DEFAULT_MAX_FRAME
    #: "immediate" keeps a per-worker memory tier mirroring the pending
    #: batch so the gateway can serve reads before the next flush.
    read_tier: str = "snapshot"

    def respawn_spec(self) -> "WorkerSpec":
        """The spec a failover respawn uses: same volume shape, no fault
        plan (the injected failure happened; the replacement is clean)."""
        return WorkerSpec(
            shard_id=self.shard_id,
            index_config=self.index_config,
            tokenizer_config=self.tokenizer_config,
            region_rules=self.region_rules,
            publish_mode=self.publish_mode,
            restore=None,
            fault_plan=None,
            kill_on_crash=False,
            check_invariants=self.check_invariants,
            max_flush_retries=self.max_flush_retries,
            buffer_cache_blocks=self.buffer_cache_blocks,
            max_frame=self.max_frame,
            read_tier=self.read_tier,
        )


@dataclass
class FlushOutcome:
    """One flush request's reply (everything the gateway aggregates)."""

    result: object = None  # BatchResult | None (None = nothing pending)
    skipped: bool = False
    version: int = 0  # the shard's batch counter after the flush
    snapshot_version: int = 0
    ndocs: int = 0
    cow: bool = False
    recoveries: int = 0
    publish_seconds: float = 0.0
    checkpoint: bytes | None = None
    #: The shard's memory-tier epoch after the post-flush rebase (0 when
    #: the worker serves the snapshot tier only).
    mem_epoch: int = 0
    #: Bucket occupancy crossed the growth threshold: this shard asks the
    #: gateway's rebuild scheduler for a growth grant next round (always
    #: False when the volume was built without ``grow_buckets``).
    wants_grow: bool = False
    #: Bucket occupancy after this flush (diagnostics for the scheduler).
    occupancy: float = 0.0
    #: Live bucket count after this flush.
    nbuckets: int = 0
    #: This flush carried a granted growth and applied it.
    grew: bool = False


@dataclass
class WorkerStats:
    """Counters one worker accumulates over its lifetime."""

    publishes: int = 0
    cow_publishes: int = 0
    full_clone_publishes: int = 0
    cow_fallbacks: int = 0
    flush_recoveries: int = 0
    requests: int = 0
    queries: int = 0
    #: Batch frames received and member reads they carried (the spread
    #: between ``batched_reads`` and ``batch_frames`` is frames saved).
    batch_frames: int = 0
    batched_reads: int = 0

    def as_dict(self) -> dict:
        return {
            "publishes": self.publishes,
            "cow_publishes": self.cow_publishes,
            "full_clone_publishes": self.full_clone_publishes,
            "cow_fallbacks": self.cow_fallbacks,
            "flush_recoveries": self.flush_recoveries,
            "requests": self.requests,
            "queries": self.queries,
            "batch_frames": self.batch_frames,
            "batched_reads": self.batched_reads,
        }


class ShardWorker:
    """The in-process half of one shard worker (testable without a fork).

    Owns the writer volume and the published snapshot; the request loop
    in :func:`worker_main` is a thin dispatch over this object's methods,
    so unit tests can drive a worker directly and the process wrapper
    stays trivial.
    """

    def __init__(self, spec: WorkerSpec) -> None:
        if spec.publish_mode not in ("clone", "cow"):
            raise ValueError("publish_mode must be 'clone' or 'cow'")
        if spec.read_tier not in ("snapshot", "immediate"):
            raise ValueError("read_tier must be 'snapshot' or 'immediate'")
        self.spec = spec
        if spec.restore is not None:
            self.writer = TextDocumentIndex.load(io.BytesIO(spec.restore))
            self.writer.tokenizer_config = spec.tokenizer_config
            self.writer.region_rules = spec.region_rules
        else:
            self.writer = TextDocumentIndex(
                spec.index_config,
                tokenizer_config=spec.tokenizer_config,
                region_rules=spec.region_rules,
            )
        self.stats = WorkerStats()
        self._snapshot_version = 0
        self._pinned: dict[int, TextDocumentIndex] = {}
        self._dirty_since_publish = False
        # Readers always have a snapshot: publish the initial (empty or
        # restored) state wholesale — there is nothing to share with.
        self._published = self.writer.clone()
        journal = self.writer.delta
        if journal is not None:
            journal.clear()
        self._buffer_counters = None
        if spec.buffer_cache_blocks:
            self.attach_buffer_cache(spec.buffer_cache_blocks)
        # The immediate-access memory tier mirrors the writer's pending
        # batch against the published snapshot.  Doc ids are *global*
        # (the gateway's router hands each shard an increasing
        # subsequence), but the two-tier partition invariant holds per
        # shard all the same: the published snapshot's ndocs is a global
        # id watermark, and everything this shard buffers sits above it.
        # A respawned worker rebuilds the tier naturally from the op-log
        # replay the gateway drives through add/delete.
        self.memtier: MemTier | None = None
        if spec.read_tier == "immediate":
            self.memtier = MemTier(base=self._published)
        # Bucket growth is *gateway-scheduled*: the in-flush auto-grower
        # is detached so replicas of one shard never grow unilaterally —
        # the grow decision rides the journaled flush op instead, which
        # makes every replica (and every op-log replay) grow at the same
        # batch boundary.  The worker keeps its own grower to answer
        # ``wants_grow`` and to apply granted growth in :meth:`flush`.
        config = spec.index_config or IndexConfig()
        self._grower = (
            BucketGrower(config.growth) if config.grow_buckets else None
        )
        self.writer.index.grower = None

    # -- ingest -----------------------------------------------------------

    def add_document(self, text: str, doc_id: int | None = None) -> int:
        self._dirty_since_publish = True
        doc_id = self.writer.add_document(text, doc_id=doc_id)
        if self.memtier is not None:
            self.memtier.add_document(
                doc_id, tokenize_document(text, self.spec.tokenizer_config)
            )
        return doc_id

    def delete_document(self, doc_id: int) -> None:
        self._dirty_since_publish = True
        self.writer.delete_document(doc_id)
        if self.memtier is not None:
            self.memtier.delete_document(doc_id)

    # -- flush + publish --------------------------------------------------

    def _flush_with_recovery(self) -> tuple[object, int]:
        """The in-process service's retry loop, run inside the worker."""
        attempts = 0
        recoveries = 0
        recovering = False
        while True:
            try:
                if recovering:
                    recoveries += 1
                    replayed = self.writer.recover(replay=True)
                    if replayed is not None:
                        return replayed, recoveries
                    recovering = False
                    continue
                return self.writer.flush_batch(), recoveries
            except InjectedCrash:
                if self.spec.kill_on_crash:
                    # The fault model says this crash kills the machine:
                    # die for real so the gateway's failover path — not
                    # in-worker recovery — is what gets exercised.
                    os.kill(os.getpid(), signal.SIGKILL)
                if not self.writer.crash_safe:
                    raise
                attempts += 1
                if attempts > self.spec.max_flush_retries:
                    raise
                recovering = True
            except TransientIOError:
                if not self.writer.crash_safe:
                    raise
                attempts += 1
                if attempts > self.spec.max_flush_retries:
                    raise
                recovering = True

    def _publish(self) -> bool:
        """Publish the writer's boundary state; True when shared (cow)."""
        journal = self.writer.delta
        snapshot = None
        cow = False
        if self.spec.publish_mode == "cow" and journal is not None:
            try:
                snapshot = self.writer.clone_incremental(
                    self._published, journal
                )
                cow = True
            except CheckpointError:
                self.stats.cow_fallbacks += 1
        if snapshot is None:
            snapshot = self.writer.clone()
        if self.spec.check_invariants:
            report = snapshot.check()
            if not report.ok:
                raise InvariantError(report)
        if self._buffer_counters is not None:
            # Carry the warmed cache across a cow publish (minus the
            # batch's dirty blocks); a full clone starts cold.
            snapshot.attach_buffer_cache(
                self.spec.buffer_cache_blocks,
                self._buffer_counters,
                prev=self._published if cow else None,
                delta=journal if cow else None,
            )
        if journal is not None:
            journal.clear()
        self._published = snapshot
        if self.memtier is not None:
            # Drop the buffered postings the flush just absorbed; the
            # single-threaded worker has no concurrent readers, but the
            # rebase keeps the tier's answers invariant regardless.
            self.memtier.rebase(snapshot)
        self._snapshot_version += 1
        self._dirty_since_publish = False
        self.stats.publishes += 1
        if cow:
            self.stats.cow_publishes += 1
        else:
            self.stats.full_clone_publishes += 1
        return cow

    def flush(
        self, include_checkpoint: bool = False, grow: bool = False
    ) -> FlushOutcome:
        """Flush the pending batch (if any) and publish the new boundary.

        A shard with nothing pending — no batched documents, no deletions
        since the last publish — skips both the flush and the publish, so
        its version vector component stands still exactly like an
        in-process :class:`~repro.core.sharded.ShardedTextIndex` shard.

        ``grow=True`` carries a growth grant from the gateway's rebuild
        scheduler: the bucket space is expanded *after* the flush lands
        (so growth never interleaves with the flush's crash-recovery
        retry loop) and before the publish, which therefore pays the
        full-clone fallback this round.  The grant rides the journaled
        flush op, so an op-log replay reproduces the growth at the same
        boundary.  Ignored when the volume was built without
        ``grow_buckets``.
        """
        grow = grow and self._grower is not None
        pending = len(self.writer.index.memory) > 0
        if not pending and not self._dirty_since_publish and not grow:
            return FlushOutcome(
                skipped=True,
                version=self.writer.batches,
                snapshot_version=self._snapshot_version,
                ndocs=self.writer.ndocs,
                mem_epoch=self._mem_epoch(),
                wants_grow=self._wants_grow(),
                occupancy=self.writer.index.buckets.occupancy(),
                nbuckets=self.writer.index.buckets.nbuckets,
            )
        result = None
        recoveries = 0
        if pending:
            result, recoveries = self._flush_with_recovery()
            self.stats.flush_recoveries += recoveries
        if grow:
            self.writer.index.grow_bucket_space(self._grower)
        start = time.perf_counter()
        cow = self._publish()
        publish_seconds = time.perf_counter() - start
        checkpoint = self.checkpoint() if include_checkpoint else None
        return FlushOutcome(
            result=result,
            version=self.writer.batches,
            snapshot_version=self._snapshot_version,
            ndocs=self.writer.ndocs,
            cow=cow,
            recoveries=recoveries,
            publish_seconds=publish_seconds,
            checkpoint=checkpoint,
            mem_epoch=self._mem_epoch(),
            wants_grow=self._wants_grow(),
            occupancy=self.writer.index.buckets.occupancy(),
            nbuckets=self.writer.index.buckets.nbuckets,
            grew=grow,
        )

    def _wants_grow(self) -> bool:
        return self._grower is not None and self._grower.should_grow(
            self.writer.index.buckets
        )

    def _mem_epoch(self) -> int:
        return self.memtier.epoch if self.memtier is not None else 0

    def checkpoint(self) -> bytes:
        """The writer serialized at its current batch boundary."""
        buf = io.BytesIO()
        self.writer.save(buf)
        return buf.getvalue()

    # -- snapshot pinning (remote clone semantics) ------------------------

    def publish_pin(self) -> int:
        """Publish the current boundary and pin it; returns the pin id.

        The remote analogue of ``IndexShard.clone()``: the caller gets a
        stable identifier for an immutable snapshot that later queries
        can address explicitly, surviving subsequent publishes until
        :meth:`release_pin`.
        """
        if self._dirty_since_publish or len(self.writer.index.memory):
            self._publish()
        pin = self._snapshot_version
        self._pinned[pin] = self._published
        return pin

    def release_pin(self, pin: int) -> None:
        self._pinned.pop(pin, None)

    def _snapshot_for(self, snapshot_id: int | None) -> TextDocumentIndex:
        if snapshot_id is None:
            return self._published
        try:
            return self._pinned[snapshot_id]
        except KeyError:
            raise KeyError(
                f"snapshot {snapshot_id} is not pinned on shard "
                f"{self.spec.shard_id}"
            ) from None

    # -- retrieval (published snapshot) -----------------------------------

    def _immediate_view(self):
        if self.memtier is None:
            raise ValueError(
                f"shard {self.spec.shard_id} was built with "
                "read_tier='snapshot'"
            )
        return self.memtier.view()

    def fetch_postings(
        self,
        word: str,
        snapshot_id: int | None = None,
        tier: str | None = None,
    ) -> tuple[list[int], int]:
        self.stats.queries += 1
        if tier == "immediate":
            return twotier.fetch_postings(self._immediate_view(), word)
        return self._snapshot_for(snapshot_id).fetch_postings(word)

    def search_boolean(self, query: str, snapshot_id: int | None = None):
        self.stats.queries += 1
        return self._snapshot_for(snapshot_id).search_boolean(query)

    def search_streamed(
        self,
        query: str,
        snapshot_id: int | None = None,
        tier: str | None = None,
    ):
        """Per-shard flat AND/OR evaluation (every document lives wholly
        on one shard, so the gateway may union shard answers).  The
        immediate tier merges buffered postings over the published
        snapshot; ``NOT``-free queries need no global universe, which is
        why boolean and vector stay gateway-evaluated."""
        self.stats.queries += 1
        if tier == "immediate":
            return twotier.search_streamed(self._immediate_view(), query)
        return self._snapshot_for(snapshot_id).search_streamed(query)

    def search_vector(
        self, weights, top_k: int = 10, snapshot_id: int | None = None
    ):
        self.stats.queries += 1
        return self._snapshot_for(snapshot_id).search_vector(
            weights, top_k=top_k
        )

    def search_vector_counted(
        self, weights, top_k: int = 10, snapshot_id: int | None = None
    ):
        self.stats.queries += 1
        return self._snapshot_for(snapshot_id).search_vector_counted(
            weights, top_k=top_k
        )

    def deleted_ids(self, snapshot_id: int | None = None) -> list[int]:
        """The published snapshot's deletion set (sorted)."""
        return sorted(self._snapshot_for(snapshot_id).deletions.deleted)

    def versioned_read(self, method: str, args: tuple):
        """A read stamped with this replica's version vector entry.

        The replicated gateway cannot trust an answer on the strength of
        its own bookkeeping alone — a replica may have fallen behind the
        published boundary between eligibility check and execution (it
        was rebuilt, or its flush never landed).  So every read returns
        ``(value, version, mem_epoch)`` and the gateway discards answers
        whose stamp trails the published vector.  Only retrieval methods
        are dispatchable; mutations must travel the journaled write path.
        """
        if method not in READ_METHODS:
            raise ValueError(f"{method!r} is not a read method")
        value = getattr(self, method)(*args)
        return value, self.writer.batches, self._mem_epoch()

    def batched_read(self, requests: tuple) -> tuple:
        """Evaluate a micro-batch of reads against one pinned state.

        The worker is single-threaded, so the published snapshot (and the
        memory tier, and the writer's batch counter) cannot move between
        members: version/snapshot validation happens **once per batch**,
        and the whole reply carries a single ``(version, mem_epoch)``
        stamp every member answer is true for.  Per-member failures are
        isolated — a poison query yields an errored member
        :class:`~repro.service.wire.Response` while its batchmates
        answer normally — exactly the error surface the member would
        have had as a lone frame.
        """
        self.stats.batch_frames += 1
        self.stats.batched_reads += len(requests)
        responses = []
        for i, request in enumerate(requests):
            if request.method not in READ_METHODS:
                responses.append(
                    wire.Response(
                        i,
                        False,
                        error=(
                            f"ValueError: {request.method!r} is not a "
                            "read method"
                        ),
                    )
                )
                continue
            try:
                value = getattr(self, request.method)(*request.args)
                responses.append(wire.Response(i, True, value))
            except Exception as exc:  # noqa: BLE001 - typed member reply
                responses.append(
                    wire.Response(
                        i, False, error=f"{type(exc).__name__}: {exc}"
                    )
                )
        return tuple(responses), self.writer.batches, self._mem_epoch()

    # -- introspection ----------------------------------------------------

    def info(self) -> dict:
        return {
            "pid": os.getpid(),
            "shard": self.spec.shard_id,
            "ndocs": self.writer.ndocs,
            "batches": self.writer.batches,
            "snapshot_version": self._snapshot_version,
            "published_ndocs": self._published.ndocs,
            "pins": sorted(self._pinned),
            "read_tier": self.spec.read_tier,
            "mem_epoch": self._mem_epoch(),
            "wants_grow": self._wants_grow(),
            "occupancy": self.writer.index.buckets.occupancy(),
            "nbuckets": self.writer.index.buckets.nbuckets,
        }

    def dirty_terms(self) -> frozenset:
        return self.writer.dirty_terms()

    def export_documents(self) -> list:
        """The writer's live documents reconstructed from its postings
        (see :meth:`TextDocumentIndex.export_documents`) — the gateway's
        relocation source when merging this shard into a sibling.  Call
        at a batch boundary (the gateway merges right after a flush
        round, so the writer is always flushed here)."""
        return self.writer.export_documents()

    def check(self):
        """Invariant-check the *published* snapshot (what readers see)."""
        return self._snapshot_for(None).check()

    def freeze(self) -> None:
        self._snapshot_for(None).freeze()

    def recover(self, replay: bool = True):
        """Roll back (and optionally replay) an aborted writer flush."""
        return self.writer.recover(replay=replay)

    def attach_buffer_cache(self, blocks: int) -> None:
        """Attach a worker-local decoded-chunk cache to the published
        snapshot (counters cannot cross the process boundary, so each
        worker keeps its own; :meth:`buffer_stats` reports them).  The
        cache is re-attached — carried forward when possible — at every
        subsequent publish."""
        from ..pipeline.profiling import HitMissCounters

        if self._buffer_counters is None:
            self._buffer_counters = HitMissCounters()
        self.spec.buffer_cache_blocks = blocks
        self._snapshot_for(None).attach_buffer_cache(
            blocks, self._buffer_counters
        )

    def buffer_stats(self) -> dict:
        counters = getattr(self, "_buffer_counters", None)
        return counters.as_dict() if counters is not None else {}

    def debug_sleep(self, seconds: float) -> float:
        """Block the worker loop (deadline and backpressure tests)."""
        time.sleep(seconds)
        return seconds

    def ping(self) -> dict:
        return {"pid": os.getpid(), "shard": self.spec.shard_id}

    def stats_dict(self) -> dict:
        return self.stats.as_dict()


#: Methods :meth:`ShardWorker.versioned_read` may dispatch — the read
#: surface of the wire contract (everything here is side-effect-free on
#: index state).
READ_METHODS = frozenset(
    {
        "fetch_postings",
        "search_boolean",
        "search_streamed",
        "search_vector",
        "search_vector_counted",
        "deleted_ids",
    }
)


#: RPC method name -> ShardWorker attribute (the dispatch table; every
#: entry is part of the wire contract the gateway and proxies rely on).
DISPATCH = {
    "ping": "ping",
    "info": "info",
    "add_document": "add_document",
    "delete_document": "delete_document",
    "flush": "flush",
    "checkpoint": "checkpoint",
    "publish_pin": "publish_pin",
    "release_pin": "release_pin",
    "fetch_postings": "fetch_postings",
    "search_boolean": "search_boolean",
    "search_streamed": "search_streamed",
    "search_vector": "search_vector",
    "search_vector_counted": "search_vector_counted",
    "versioned_read": "versioned_read",
    "deleted_ids": "deleted_ids",
    "recover": "recover",
    "dirty_terms": "dirty_terms",
    "export_documents": "export_documents",
    "check": "check",
    "freeze": "freeze",
    "attach_buffer_cache": "attach_buffer_cache",
    "buffer_stats": "buffer_stats",
    "debug_sleep": "debug_sleep",
    "stats": "stats_dict",
}


def serve(sock, spec: WorkerSpec) -> None:
    """The worker request loop: read a frame, dispatch, reply, repeat.

    Exits cleanly on a ``shutdown`` request or when the gateway closes
    its end of the socket.  Any exception a handler raises is reported as
    a typed error response; framing-level corruption terminates the loop
    (a desynchronized stream cannot be trusted with another frame).
    """
    worker = ShardWorker(spec)
    if spec.fault_plan is not None:
        faults.install(spec.fault_plan)
    try:
        while True:
            try:
                request = wire.recv_message(sock, spec.max_frame)
            except wire.WireError:
                break
            if request is None:
                break
            worker.stats.requests += 1
            if isinstance(request, wire.BatchRequest):
                responses, version, mem_epoch = worker.batched_read(
                    request.requests
                )
                reply = wire.BatchResponse(
                    request.request_id, responses, version, mem_epoch
                )
                try:
                    wire.send_message(sock, reply, spec.max_frame)
                except wire.FrameTooLarge:
                    # Degrade per member: every answer is refused, but
                    # the envelope still arrives so no waiter hangs.
                    errored = tuple(
                        wire.Response(
                            r.request_id,
                            False,
                            error="FrameTooLarge: batch response "
                            "exceeded the frame budget",
                        )
                        for r in responses
                    )
                    wire.send_message(
                        sock,
                        wire.BatchResponse(
                            request.request_id, errored, version, mem_epoch
                        ),
                        spec.max_frame,
                    )
                continue
            if request.method == "shutdown":
                wire.send_message(
                    sock,
                    wire.Response(request.request_id, True, None),
                    spec.max_frame,
                )
                break
            handler = DISPATCH.get(request.method)
            if handler is None:
                response = wire.Response(
                    request.request_id,
                    False,
                    error=f"UnknownMethod: {request.method!r}",
                )
            else:
                try:
                    value = getattr(worker, handler)(*request.args)
                    response = wire.Response(request.request_id, True, value)
                except Exception as exc:  # noqa: BLE001 - typed reply
                    response = wire.Response(
                        request.request_id,
                        False,
                        error=f"{type(exc).__name__}: {exc}",
                    )
            try:
                wire.send_message(sock, response, spec.max_frame)
            except wire.FrameTooLarge:
                wire.send_message(
                    sock,
                    wire.Response(
                        request.request_id,
                        False,
                        error="FrameTooLarge: response exceeded the "
                        "frame budget",
                    ),
                    spec.max_frame,
                )
    finally:
        faults.uninstall()
        sock.close()


def worker_main(sock, spec: WorkerSpec) -> None:
    """Child-process entry point (the ``multiprocessing`` target)."""
    # The worker must not react to the parent's Ctrl-C: the gateway owns
    # shutdown via the socket (or SIGKILL on abandon).
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    serve(sock, spec)


def default_index_config() -> IndexConfig:
    """The worker-friendly default volume shape (content mode on)."""
    return IndexConfig(store_contents=True)
