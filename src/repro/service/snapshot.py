"""Immutable query snapshots of the dual-structure index.

The paper's concurrency story (§1: queries keep running while daily
NetNews batches are absorbed) is realized here as *snapshot isolation*:
the writer clones the index at a batch boundary and publishes the clone.
Readers therefore evaluate against a structure the writer never touches
again — no reader can see a half-flushed bucket or a partially relocated
long list, because the clone was taken from a consistent batch-boundary
state.

The snapshot holds any :class:`~repro.core.shard.IndexShard` — a single
:class:`~repro.textindex.TextDocumentIndex` volume or a
:class:`~repro.core.sharded.ShardedTextIndex` vector of them.  For a
sharded writer the publish clones *every* shard first and swaps the
completed vector in as one reference assignment, so readers always see a
mutually consistent set of shard states (identified by
:attr:`shard_versions`, the per-shard batch counters).

A snapshot is shared by many reader threads at once, so its query methods
keep *all* accounting local to the call — the shard protocol's
``search_*`` methods guarantee per-call read-op counters.  (The
underlying simulated disks do mutate benign bookkeeping — head positions,
I/O counters — under concurrent reads; none of that affects answers,
which derive only from the immutable block payloads.)

``shard_versions`` (plus, on the immediate tier, the per-shard memory
epochs) is also the contract the *replicated* gateway enforces remotely:
:mod:`repro.service.gateway` stamps every replica answer with the same
vector entries and discards responses trailing the published boundary,
so a replica lagging one publish epoch can never serve a reader a state
this class would not have published (:mod:`repro.service.replication`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from ..query.vector import ScoredDocument
from ..textindex import QueryAnswer

if TYPE_CHECKING:
    from ..core.shard import IndexShard
    from ..query.reference import BruteForceIndex


class IndexSnapshot:
    """One published, immutable-by-convention state of the index.

    ``snapshot_id`` increases by one per publication; ``batch`` is the
    number of batch updates the snapshot has absorbed and
    ``shard_versions`` the per-shard batch counters (a one-element vector
    for a single volume) — the identity the result cache keys on.
    ``reference`` is an optionally attached
    :class:`~repro.query.reference.BruteForceIndex` frozen at the same
    boundary (stress tests compare every served answer against it).
    """

    def __init__(
        self,
        index: "IndexShard",
        snapshot_id: int,
        reference: "BruteForceIndex | None" = None,
    ) -> None:
        self.index = index
        self.snapshot_id = snapshot_id
        self.batch = index.batches
        self.shard_versions = index.shard_versions
        # The routing-table epoch the snapshot was published under (0
        # for single volumes and never-rebalanced sharded writers).  A
        # split/merge moves documents between shards, so per-shard batch
        # counters alone no longer identify the state — the epoch rides
        # ahead of them in :attr:`version_vector`.
        self.routing_epoch = getattr(index, "routing_epoch", 0)
        self.ndocs = index.ndocs
        self.reference = reference
        # The memory-tier epoch at publish time (0 when the service runs
        # snapshot-tier only).  Stamped by the publisher after rebasing
        # the write buffer onto this snapshot; immediate-tier cache
        # entries validate against the live epoch relative to this
        # boundary (DESIGN.md §14).
        self.mem_epoch = 0

    @property
    def version_vector(self) -> tuple[int, ...]:
        """The cache-identity vector: routing epoch, then the per-shard
        batch counters.  Equal vectors imply the same routing topology
        *and* the same per-shard states, so a cached answer keyed on
        this vector can never survive a split or merge."""
        return (self.routing_epoch,) + tuple(self.shard_versions)

    @classmethod
    def publish_from(
        cls,
        writer: "IndexShard",
        snapshot_id: int,
        reference: "BruteForceIndex | None" = None,
    ) -> "IndexSnapshot":
        """Copy-on-publish: clone ``writer`` at its batch boundary."""
        return cls(writer.clone(), snapshot_id, reference=reference)

    @classmethod
    def publish_incremental(
        cls,
        writer: "IndexShard",
        prev: "IndexSnapshot",
        delta,
        snapshot_id: int,
        reference: "BruteForceIndex | None" = None,
    ) -> "IndexSnapshot":
        """Incremental copy-on-write publish: share ``prev``'s untouched
        structure, deep-copy only what ``delta`` marks dirty.

        Raises :class:`~repro.core.checkpoint.CheckpointError` when the
        delta cannot cover the gap (recovery, structural rebuild, config
        mismatch); the service falls back to :meth:`publish_from`.  A
        sharded writer falls back *per shard* instead of raising.
        """
        clone = writer.clone_incremental(prev.index, delta)
        return cls(clone, snapshot_id, reference=reference)

    # -- retrieval (thread-safe: no shared accounting) --------------------

    def fetch_postings(self, word: str) -> tuple[list[int], int]:
        """One word's live doc ids plus read ops (the two-tier base
        fetch primitive — :mod:`repro.query.twotier` merges buffered
        postings on top of exactly this)."""
        return self.index.fetch_postings(word)

    def search_boolean(self, query: str) -> QueryAnswer:
        """Evaluate a boolean query against this snapshot."""
        return self.index.search_boolean(query)

    def search_streamed(self, query: str) -> QueryAnswer:
        """Evaluate a flat AND/OR query lazily against this snapshot."""
        return self.index.search_streamed(query)

    def search_vector(
        self, weights: Mapping[str, float], top_k: int = 10
    ) -> list[ScoredDocument]:
        """Rank documents for a weighted vector query."""
        return self.index.search_vector(weights, top_k=top_k)

    def search_vector_counted(
        self, weights: Mapping[str, float], top_k: int = 10
    ) -> tuple[list[ScoredDocument], int]:
        """:meth:`search_vector` plus the read ops it charged."""
        return self.index.search_vector_counted(weights, top_k=top_k)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IndexSnapshot(id={self.snapshot_id}, batch={self.batch}, "
            f"shards={self.shard_versions}, ndocs={self.ndocs})"
        )
