"""Immutable query snapshots of the dual-structure index.

The paper's concurrency story (§1: queries keep running while daily
NetNews batches are absorbed) is realized here as *snapshot isolation*:
the writer clones the whole text index at a batch boundary through the
checkpoint machinery (:meth:`repro.textindex.TextDocumentIndex.clone`) and
publishes the clone.  Readers therefore evaluate against a structure the
writer never touches again — no reader can see a half-flushed bucket or a
partially relocated long list, because the clone was serialized from a
consistent batch-boundary state.

A snapshot is shared by many reader threads at once, so its query methods
keep *all* accounting local to the call: unlike the facade's
``last_read_ops`` counter, read-op totals here live in per-query closures.
(The underlying simulated disks do mutate benign bookkeeping — head
positions, I/O counters — under concurrent reads; none of that affects
answers, which derive only from the immutable block payloads.)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from ..query import boolean as boolean_query
from ..query import vector as vector_query
from ..query.vector import ScoredDocument
from ..textindex import QueryAnswer, TextDocumentIndex

if TYPE_CHECKING:
    from ..query.reference import BruteForceIndex


class IndexSnapshot:
    """One published, immutable-by-convention state of the index.

    ``snapshot_id`` increases by one per publication; ``batch`` is the
    number of batch updates the snapshot has absorbed.  ``reference`` is
    an optionally attached :class:`~repro.query.reference.BruteForceIndex`
    frozen at the same boundary (stress tests compare every served answer
    against it).
    """

    def __init__(
        self,
        index: TextDocumentIndex,
        snapshot_id: int,
        reference: "BruteForceIndex | None" = None,
    ) -> None:
        self.index = index
        self.snapshot_id = snapshot_id
        self.batch = index.index.batches
        self.ndocs = index.ndocs
        self.reference = reference

    @classmethod
    def publish_from(
        cls,
        writer: TextDocumentIndex,
        snapshot_id: int,
        reference: "BruteForceIndex | None" = None,
    ) -> "IndexSnapshot":
        """Copy-on-publish: clone ``writer`` at its batch boundary."""
        return cls(writer.clone(), snapshot_id, reference=reference)

    @classmethod
    def publish_incremental(
        cls,
        writer: TextDocumentIndex,
        prev: "IndexSnapshot",
        delta,
        snapshot_id: int,
        reference: "BruteForceIndex | None" = None,
    ) -> "IndexSnapshot":
        """Incremental copy-on-write publish: share ``prev``'s untouched
        structure, deep-copy only what ``delta`` marks dirty.

        Raises :class:`~repro.core.checkpoint.CheckpointError` when the
        delta cannot cover the gap (recovery, structural rebuild, config
        mismatch); the service falls back to :meth:`publish_from`.
        """
        clone = writer.clone_incremental(prev.index, delta)
        return cls(clone, snapshot_id, reference=reference)

    # -- retrieval (thread-safe: no shared accounting) --------------------

    def _fetch_counted(self, counter: list[int]):
        """A fetcher closure whose read-op total lives in ``counter``."""
        index = self.index

        def fetch(word: str) -> list[int]:
            word_id = index.vocabulary.lookup(word)
            if word_id is None:
                return []
            postings, read_ops = index.index.fetch(word_id)
            counter[0] += read_ops
            return index.deletions.filter(postings.doc_ids)

        return fetch

    def search_boolean(self, query: str) -> QueryAnswer:
        """Evaluate a boolean query against this snapshot."""
        counter = [0]
        docs = boolean_query.evaluate(
            query, self._fetch_counted(counter), self.index.index.ndocs
        )
        docs = self.index.deletions.filter(docs)
        return QueryAnswer(doc_ids=docs, read_ops=counter[0])

    def search_streamed(self, query: str) -> QueryAnswer:
        """Evaluate a flat AND/OR query lazily against this snapshot.

        Delegates to the facade: the streamed path already keeps its
        accounting in per-call :class:`~repro.query.streaming.StreamStats`.
        """
        return self.index.search_streamed(query)

    def search_vector(
        self, weights: Mapping[str, float], top_k: int = 10
    ) -> list[ScoredDocument]:
        """Rank documents for a weighted vector query."""
        counter = [0]
        return vector_query.rank(
            weights,
            self._fetch_counted(counter),
            self.index.index.ndocs,
            top_k=top_k,
        )

    def search_vector_counted(
        self, weights: Mapping[str, float], top_k: int = 10
    ) -> tuple[list[ScoredDocument], int]:
        """:meth:`search_vector` plus the read ops it charged."""
        counter = [0]
        ranked = vector_query.rank(
            weights,
            self._fetch_counted(counter),
            self.index.index.ndocs,
            top_k=top_k,
        )
        return ranked, counter[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IndexSnapshot(id={self.snapshot_id}, batch={self.batch}, "
            f"ndocs={self.ndocs})"
        )
