"""Multi-process serving: replicated shard workers behind an async gateway.

The sharded index of DESIGN.md §12 scatter-gathers via function calls
inside one interpreter, so its read path is GIL-bound.  This module puts
each shard behind its own OS processes (:mod:`repro.service.worker`) and
builds the serving front end on top:

* :class:`WorkerProcess` — spawn/respawn one shard worker and its
  socketpair; carries the synchronous request machinery.
* :class:`ShardProxy` — a synchronous client satisfying the
  :class:`~repro.core.shard.IndexShard` protocol, so code written against
  the protocol (scatter merges, differential batteries) runs unchanged
  over a remote shard.  ``clone()`` maps to a *pinned snapshot* in the
  worker: the returned proxy addresses that immutable snapshot explicitly
  until released.
* :class:`AsyncShardGateway` — the asyncio front end: scatter-gather
  fan-out over all shards, **admission control** (a bounded wait queue
  that sheds load with :class:`GatewayOverloaded` once full),
  **per-shard deadlines** (:class:`ShardDeadlineExceeded`, a typed
  partial-failure error naming the shards that missed), and
  **replicated failover** (:mod:`repro.service.replication`): each shard
  runs ``replicas`` worker processes; writes fan out to every healthy
  replica, reads rotate round-robin across them with every answer
  validated against the published version vector, and a dead or lagging
  replica is rebuilt in the background — from the shard's parent-side
  checkpoint plus the replayed op log — while its siblings keep serving.
  A shard-level :class:`~repro.core.rebalance.RebuildScheduler` staggers
  ``grow_buckets`` rebuilds so at most one shard pays the rehash +
  full-clone publish spike per flush round.
* :class:`GatewayService` — a thread-safe synchronous facade with the
  :class:`~repro.service.server.QueryService` surface, so the load
  generator and CLI drive in-process and multi-process serving through
  the same code.

Read-path amortization (DESIGN.md §16): every logical read used to cost
one pickled frame per shard — at saturation the per-frame tax (pickle +
syscall + dispatch, times shards × replicas) dominates.  Two layers buy
it back, changing only how reads *travel*, never what they evaluate
against:

* **Adaptive micro-batching** — each replica carries a
  :class:`_ReadBatcher` that accumulates queued reads and flushes them
  as one :class:`~repro.service.wire.BatchRequest` frame when
  ``max_batch_size`` is reached or an adaptive delay window expires.
  The window is near-zero while the queue has been shallow (an unloaded
  read still goes out on the next loop tick) and widens toward
  ``max_batch_delay_us`` as recent batch depth grows, so saturated
  throughput rises without taxing unloaded latency.  The worker
  validates version/snapshot once per batch, evaluates every member
  against that one pinned state, and isolates per-member errors;
  deadlines and admission still account each member individually.
  ``max_batch_size=1`` disables the layer entirely — the wire traffic
  is then frame-for-frame identical to the unbatched protocol.
* **Single-flight coalescing** (``coalesce=True``) — identical
  concurrent evaluations, keyed on canonical (query, mode, read tier),
  run once and fan the answer back out to every waiter.  A guard keyed
  on the published version vector refuses to join a flight admitted
  against an older vector than the waiter's own admission point, so a
  coalesced answer can never be staler than the waiter is entitled to.

Consistency model: queries evaluate against each shard's *published*
snapshot.  At a flush boundary (no flush in flight) the gateway's answers
are byte-identical to an in-process
:class:`~repro.core.sharded.ShardedTextIndex` fed the same operations —
the differential battery pins this, replicated or not (replicas of one
shard apply the same op sequence, so any of them answers identically).
*During* a flush, per-shard staleness may skew: each shard's contribution
to an answer is one of its own boundary states, but different shards may
be one publish apart (shards partition the documents, so every
per-document answer fragment is still exact for its boundary).  The
in-process service's atomic vector swap is the stronger guarantee; the
gateway trades it for multi-core execution and documents the difference.

Durability/failover model: the gateway is the single writer, so it can
journal every mutation parent-side — ``(add, doc_id, text)`` /
``(delete, doc_id)`` / ``(flush, grow)`` per shard — and retain one
serialized checkpoint per shard from the last boundary at which *every*
replica was healthy (``checkpoint_every`` controls the cadence).
Rebuilding a dead replica is then deterministic: restore the checkpoint,
replay the log.  No state is lost because nothing any single worker
alone knew is needed to reconstruct it — and with ``replicas >= 2`` the
rebuild happens entirely off the read path, so a SIGKILL mid-flush no
longer stalls reads on that shard (the single-replica failover latency
the PR 6 chaos battery measures becomes the k=1 degenerate case).
"""

from __future__ import annotations

import asyncio
import itertools
import socket
import threading
import time
from contextlib import asynccontextmanager
from dataclasses import dataclass, field, replace as dc_replace

from ..core.index import BatchResult, IndexConfig
from ..core.invariants import InvariantReport, Violation
from ..core.rebalance import (
    RebalancePlanner,
    RebalancePolicy,
    RebuildScheduler,
)
from ..core.routing import RoutingTable
from ..pipeline.profiling import LatencyRecorder, StageTimings
from ..query import boolean as boolean_query
from ..query import scatter
from ..query import streaming as streaming_query
from ..query import vector as vector_query
from ..textindex import QueryAnswer
from . import wire
from .cache import QueryResultCache
from .replication import (
    Replica,
    ReplicaSet,
    ReplicaState,
    ReplicationStats,
    replica_specs,
)
from .server import ServiceStats, _boolean_terms
from .worker import FlushOutcome, WorkerSpec, worker_main


class GatewayError(Exception):
    """Base class for gateway-level failures."""


class GatewayOverloaded(GatewayError):
    """Admission control shed this request: the bounded queue is full."""

    def __init__(self, queued: int, limit: int) -> None:
        super().__init__(
            f"gateway overloaded: {queued} requests queued "
            f"(limit {limit})"
        )
        self.queued = queued
        self.limit = limit


class ShardDeadlineExceeded(GatewayError):
    """One or more shards missed their per-shard deadline.

    A typed *partial failure*: ``shards`` names the offenders and
    ``completed`` counts the sibling answers that did arrive in time —
    enough for a caller to degrade (retry, serve partial, shed).
    """

    def __init__(
        self, shards: tuple[int, ...], method: str, completed: int = 0
    ) -> None:
        super().__init__(
            f"shard(s) {list(shards)} exceeded the deadline for "
            f"{method!r} ({completed} sibling answers completed)"
        )
        self.shards = shards
        self.method = method
        self.completed = completed


class WorkerDied(GatewayError):
    """The worker's connection broke (process death or stream corruption)."""


class RemoteWorkerError(GatewayError):
    """The worker executed the request and reported a failure."""


def _mp_context():
    """Fork where available (cheap respawns, inherited socket); the
    platform default elsewhere — sockets cross via mp's fd reduction."""
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return multiprocessing.get_context()


class WorkerProcess:
    """One spawned shard-worker process plus its parent-side socket."""

    def __init__(self, spec: WorkerSpec) -> None:
        self.spec = spec
        parent, child = socket.socketpair()
        ctx = _mp_context()
        self.process = ctx.Process(
            target=worker_main,
            args=(child, spec),
            name=f"shard-worker-{spec.shard_id}",
            daemon=True,
        )
        self.process.start()
        child.close()
        self.sock: socket.socket | None = parent
        self._seq = itertools.count(1)
        self._lock = threading.RLock()

    @property
    def pid(self) -> int | None:
        return self.process.pid

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    def take_socket(self) -> socket.socket:
        """Hand the socket to an async owner (disables sync ``call``)."""
        sock, self.sock = self.sock, None
        if sock is None:
            raise RuntimeError("worker socket already taken")
        return sock

    def call(self, method: str, *args, max_frame: int | None = None):
        """Synchronous request/response (serialized per worker)."""
        max_frame = max_frame or self.spec.max_frame
        with self._lock:
            if self.sock is None:
                raise WorkerDied("worker socket detached or closed")
            request_id = next(self._seq)
            try:
                wire.send_message(
                    self.sock, wire.Request(request_id, method, args),
                    max_frame,
                )
                while True:
                    response = wire.recv_message(self.sock, max_frame)
                    if response is None:
                        raise WorkerDied(
                            f"worker {self.spec.shard_id} closed the "
                            f"connection during {method!r}"
                        )
                    if response.request_id != request_id:
                        continue  # stale reply from an abandoned call
                    break
            except (ConnectionError, wire.TruncatedFrame) as exc:
                raise WorkerDied(
                    f"worker {self.spec.shard_id} died during "
                    f"{method!r}: {exc}"
                ) from exc
        if response.ok:
            return response.value
        raise RemoteWorkerError(
            f"shard {self.spec.shard_id} {method}: {response.error}"
        )

    def kill(self) -> None:
        """SIGKILL the worker (the chaos battery's murder weapon)."""
        if self.process.is_alive():
            self.process.kill()
        self.process.join(timeout=10.0)

    def close(self, graceful: bool = True) -> None:
        """Shut the worker down and reap the process."""
        if graceful and self.sock is not None and self.process.is_alive():
            try:
                self.call("shutdown")
            except GatewayError:
                pass
        if self.sock is not None:
            self.sock.close()
            self.sock = None
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=10.0)
        if self.process.is_alive():  # pragma: no cover - last resort
            self.process.kill()
            self.process.join(timeout=10.0)


class ShardProxy:
    """A synchronous :class:`IndexShard`-shaped client for one worker.

    An unpinned proxy addresses the worker's latest published snapshot
    for queries and its live writer for ingest; a pinned proxy (returned
    by :meth:`clone`) addresses one immutable published snapshot
    explicitly.  ``delta`` is ``None`` — journaling and copy-on-write
    publication happen *inside* the worker, which is the point of the
    process seam.
    """

    def __init__(
        self, worker: WorkerProcess, snapshot_id: int | None = None
    ) -> None:
        self._worker = worker
        self._snapshot_id = snapshot_id

    # -- identity ---------------------------------------------------------

    @property
    def ndocs(self) -> int:
        return self._worker.call("info")["ndocs"]

    @property
    def batches(self) -> int:
        return self._worker.call("info")["batches"]

    @property
    def shard_versions(self) -> tuple[int, ...]:
        return (self.batches,)

    @property
    def crash_safe(self) -> bool:
        config = self._worker.spec.index_config or IndexConfig()
        return config.crash_safe

    @property
    def delta(self):
        return None

    @property
    def needs_recovery(self) -> bool:
        return False  # aborted in-worker flushes recover inside flush()

    # -- ingest -----------------------------------------------------------

    def add_document(self, text: str, doc_id: int | None = None) -> int:
        return self._worker.call("add_document", text, doc_id)

    def delete_document(self, doc_id: int) -> None:
        self._worker.call("delete_document", doc_id)

    def flush_batch(self) -> BatchResult:
        outcome: FlushOutcome = self._worker.call("flush", False)
        if outcome.result is not None:
            return outcome.result
        return BatchResult(outcome.version, 0, 0, 0, 0, 0, 0, 0, 0)

    def recover(self, replay: bool = True):
        return self._worker.call("recover", replay)

    # -- publication ------------------------------------------------------

    def clone(self) -> "ShardProxy":
        pin = self._worker.call("publish_pin")
        return ShardProxy(self._worker, snapshot_id=pin)

    def clone_incremental(self, prev, delta) -> "ShardProxy":
        # The worker applies cow internally per its publish mode; the
        # remote clone surface is therefore mode-agnostic.
        return self.clone()

    def release(self) -> None:
        """Release a pinned snapshot (no-op on the live proxy)."""
        if self._snapshot_id is not None:
            self._worker.call("release_pin", self._snapshot_id)

    def dirty_terms(self) -> frozenset:
        return self._worker.call("dirty_terms")

    def freeze(self) -> None:
        self._worker.call("freeze")

    def check(self) -> InvariantReport:
        return self._worker.call("check")

    def attach_buffer_cache(
        self, blocks: int, counters, prev=None, delta=None
    ) -> None:
        # Counters cannot cross the process boundary; the worker keeps
        # its own and reports them through ``buffer_stats``.
        self._worker.call("attach_buffer_cache", blocks)

    # -- retrieval --------------------------------------------------------

    def fetch_postings(self, word: str) -> tuple[list[int], int]:
        return self._worker.call("fetch_postings", word, self._snapshot_id)

    def search_boolean(self, query: str) -> QueryAnswer:
        return self._worker.call("search_boolean", query, self._snapshot_id)

    def search_streamed(self, query: str) -> QueryAnswer:
        return self._worker.call(
            "search_streamed", query, self._snapshot_id
        )

    def search_vector(self, weights, top_k: int = 10):
        return self._worker.call(
            "search_vector", dict(weights), top_k, self._snapshot_id
        )

    def search_vector_counted(self, weights, top_k: int = 10):
        return self._worker.call(
            "search_vector_counted", dict(weights), top_k, self._snapshot_id
        )


@dataclass(frozen=True)
class GatewaySnapshot:
    """An identity token for one published gateway boundary.

    Unlike the in-process :class:`~repro.service.snapshot.IndexSnapshot`
    this does not *pin* shard state — it records the boundary's identity
    (snapshot id, universe size, deletion set) so universe-sensitive
    evaluation (``NOT``, idf) uses a consistent published view.
    """

    snapshot_id: int
    ndocs: int
    deleted: frozenset
    shard_versions: tuple[int, ...]
    reference: object = None
    #: Per-shard memory-tier epochs at this boundary (empty when the
    #: gateway serves the snapshot tier only) — they ride the version
    #: vector so cache layers can scope invalidation to buffered terms.
    mem_epochs: tuple[int, ...] = ()
    #: Routing-table epoch the boundary was published under.  A shard
    #: split or merge bumps it (and the snapshot id), so any identity
    #: comparison over this token distinguishes pre- and post-rebalance
    #: boundaries even when per-shard counters happen to coincide.
    routing_epoch: int = 0


@dataclass
class GatewayStats:
    """Gateway-side counters (the serving report's ``gateway`` section)."""

    failovers: int = 0
    deadline_exceeded: int = 0
    shed: int = 0
    flushes: int = 0
    replayed_ops: int = 0
    worker_kills_observed: int = 0

    def as_dict(self) -> dict:
        return {
            "failovers": self.failovers,
            "deadline_exceeded": self.deadline_exceeded,
            "shed": self.shed,
            "flushes": self.flushes,
            "replayed_ops": self.replayed_ops,
            "worker_kills_observed": self.worker_kills_observed,
        }


@dataclass
class RebalanceStats:
    """Online split/merge counters (``gateway_stats["rebalance"]``)."""

    #: Shard splits completed (victim slice halved onto a new shard).
    splits: int = 0
    #: Shard merges completed (two shards rebuilt as one union shard).
    merges: int = 0
    #: Live documents relocated across all structural moves.
    docs_moved: int = 0
    #: Total seconds readers could observe a relocation overlap (split:
    #: routing flip → victim tombstone publish; merge: the synchronous
    #: cutover block).  Answers stay exact throughout — the scatter
    #: merges dedupe — this measures the window, not an outage.
    cutover_seconds: float = 0.0
    last_cutover_seconds: float = 0.0
    #: max/mean live-doc imbalance at the last planner sample.
    last_imbalance: float = 0.0

    def as_dict(self) -> dict:
        return {
            "splits": self.splits,
            "merges": self.merges,
            "docs_moved": self.docs_moved,
            "cutover_seconds": round(self.cutover_seconds, 6),
            "last_cutover_seconds": round(self.last_cutover_seconds, 6),
            "last_imbalance": round(self.last_imbalance, 6),
        }


@dataclass
class BatchingStats:
    """Read-batching + coalescing counters (``gateway_stats["batching"]``).

    ``single_read_frames`` counts reads that traveled the unbatched
    ``versioned_read`` path (``max_batch_size=1``); with batching on it
    stays 0, which is exactly what the frame-parity test pins.
    """

    #: Reads sent as standalone ``versioned_read`` frames.
    single_read_frames: int = 0
    #: Batch envelopes sent (one frame each).
    batch_frames: int = 0
    #: Member reads carried inside those envelopes.
    batched_reads: int = 0
    #: Occurrences of each batch size, ``{size: count}``.
    histogram: dict = field(default_factory=dict)
    #: Waiters served from an in-flight identical evaluation.
    coalesce_hits: int = 0
    #: Evaluations that ran because no joinable flight existed.
    coalesce_misses: int = 0
    #: Flights refused because their admission token trailed the
    #: waiter's — the single-flight staleness guard firing.
    coalesce_stale_skips: int = 0

    def record_batch(self, size: int) -> None:
        self.batch_frames += 1
        self.batched_reads += size
        self.histogram[size] = self.histogram.get(size, 0) + 1

    @property
    def frames_saved(self) -> int:
        """Frames batching avoided: each envelope of n members replaces
        n standalone frames."""
        return self.batched_reads - self.batch_frames

    def as_dict(self) -> dict:
        return {
            "single_read_frames": self.single_read_frames,
            "batch_frames": self.batch_frames,
            "batched_reads": self.batched_reads,
            "frames_saved": self.frames_saved,
            "batch_size_histogram": {
                str(size): count
                for size, count in sorted(self.histogram.items())
            },
            "coalesce_hits": self.coalesce_hits,
            "coalesce_misses": self.coalesce_misses,
            "coalesce_stale_skips": self.coalesce_stale_skips,
        }


def _retrieve(future) -> None:
    """Done-callback marking a future's exception retrieved — batch
    members and flights can outlive every waiter (deadline abandonment),
    and an orphaned failure must not warn at GC time."""
    if not future.cancelled():
        future.exception()


class _ReadBatcher:
    """Per-replica read micro-batcher (DESIGN.md §16).

    ``enqueue`` is synchronous, so every read the scatter fan-out creates
    in one event-loop tick — a query's words × this replica — lands in
    the same queue before any flush task runs, and travels as one frame
    even on an idle gateway.  The flush fires when the queue reaches
    ``max_batch_size`` or when the adaptive delay window expires: zero
    extra wait while recent batches have been shallow, widening toward
    ``max_batch_delay_us`` as the depth EWMA approaches the cap (under
    load, waiting a hair collects a much fuller frame).
    """

    def __init__(self, gateway: "AsyncShardGateway", replica: Replica):
        self._gateway = gateway
        self._replica = replica
        self._queue: list = []
        self._flusher: asyncio.Task | None = None
        #: EWMA of recent flush depths — the load signal the delay
        #: window adapts to.
        self.depth_ewma = 0.0

    def enqueue(self, method: str, args: tuple) -> asyncio.Future:
        """Queue one member read; resolves to ``(value, version,
        mem_epoch)`` or the member's / connection's failure."""
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        future.add_done_callback(_retrieve)
        self._queue.append((method, args, future))
        if len(self._queue) >= self._gateway.max_batch_size:
            batch, self._queue = self._queue, []
            loop.create_task(self._send(batch))
        elif self._flusher is None:
            self._flusher = loop.create_task(self._delayed_flush())
        return future

    def delay_s(self) -> float:
        """The adaptive window for the next timed flush.

        Zero while recent batches have filled less than half the cap — a
        zero sleep is a plain ready-queue yield (no timer), so shallow
        traffic still coalesces same-tick members and pays no added
        latency.  Past the half-full mark the window widens linearly
        toward ``max_batch_delay_us``: the queue is deep enough that
        waiting a hair collects a much fuller frame.
        """
        gateway = self._gateway
        if gateway.max_batch_delay_us <= 0:
            return 0.0
        fill = min(1.0, self.depth_ewma / gateway.max_batch_size)
        if fill < 0.5:
            return 0.0
        return gateway.max_batch_delay_us * 1e-6 * fill

    async def _delayed_flush(self) -> None:
        try:
            await asyncio.sleep(self.delay_s())
        finally:
            # Clear before sending so members enqueued during the RPC
            # open a fresh window instead of silently queueing forever.
            self._flusher = None
        batch, self._queue = self._queue, []
        if batch:
            await self._send(batch)

    async def _send(self, batch: list) -> None:
        """Ship one batch as a single frame and distribute the answers.

        Member ids are batch ordinals; the envelope's ``request_id``
        does the reply matching on the connection.  A connection-level
        failure fans out to every member (each waiter runs its own
        failover); a member-level failure resolves only that member.
        """
        gateway = self._gateway
        replica = self._replica
        self.depth_ewma = 0.75 * self.depth_ewma + 0.25 * len(batch)
        gateway.batching.record_batch(len(batch))
        members = tuple(
            wire.Request(ordinal, method, args)
            for ordinal, (method, args, _) in enumerate(batch)
        )
        try:
            async with replica.lock:
                stream_writer = replica.writer
                if stream_writer is None:
                    raise WorkerDied(f"{replica.name} has no connection")
                request_id = next(replica.seq)
                header, payload = wire.encode_parts(
                    wire.BatchRequest(request_id, members),
                    gateway.max_frame,
                )
                stream_writer.write(header)
                stream_writer.write(payload)
                await stream_writer.drain()
                while True:
                    reply = await wire.read_message_async(
                        replica.reader, gateway.max_frame
                    )
                    if reply is None:
                        raise WorkerDied(
                            f"{replica.name} closed the connection "
                            "during a batched read"
                        )
                    if reply.request_id != request_id:
                        continue  # stale reply from an abandoned call
                    break
        except Exception as exc:  # noqa: BLE001 - fan the failure out
            for _, _, future in batch:
                if not future.done():
                    future.set_exception(exc)
            return
        for (method, _, future), member in zip(batch, reply.responses):
            if future.done():
                continue
            if member.ok:
                future.set_result(
                    (member.value, reply.version, reply.mem_epoch)
                )
            else:
                future.set_exception(
                    RemoteWorkerError(
                        f"{replica.name} {method}: {member.error}"
                    )
                )
        if len(reply.responses) < len(batch):  # pragma: no cover
            exc = WorkerDied(
                f"{replica.name} answered {len(reply.responses)} of "
                f"{len(batch)} batch members"
            )
            for _, _, future in batch[len(reply.responses):]:
                if not future.done():
                    future.set_exception(exc)


class _Flight:
    """One in-flight coalescible evaluation (a single-flight entry).

    ``token`` is the admission token the leader was admitted against;
    only waiters whose own token it covers may join (the staleness
    guard).
    """

    __slots__ = ("token", "future")

    def __init__(self, token: tuple, future: asyncio.Future) -> None:
        self.token = token
        self.future = future


def _covers(flight_token: tuple, admission_token: tuple) -> bool:
    """May a waiter admitted at ``admission_token`` join this flight?

    Every token component is monotone (versions, epochs, counters), so
    componentwise >= means the flight's answer reflects at least
    everything the waiter's admission point is entitled to see.
    """
    return len(flight_token) == len(admission_token) and all(
        mine >= theirs
        for mine, theirs in zip(flight_token, admission_token)
    )


def _op_rpc(op: tuple) -> tuple[str, tuple]:
    """Translate one journaled op into its worker RPC."""
    if op[0] == "add":
        return "add_document", (op[2], op[1])
    if op[0] == "delete":
        return "delete_document", (op[1],)
    # ("flush", grow) — PR 6 journals carried bare ("flush",) markers.
    grow = op[1] if len(op) > 1 else False
    return "flush", (False, grow)


class AsyncShardGateway:
    """Asyncio scatter-gather over N shards × k replica processes."""

    #: Exceptions that mean "this replica's process or stream is gone".
    _DEATH = (WorkerDied, ConnectionError, BrokenPipeError,
              wire.TruncatedFrame)

    def __init__(
        self,
        config: IndexConfig | None = None,
        tokenizer_config=None,
        *,
        shards: int = 2,
        replicas: int = 1,
        router_seed: int = 0,
        publish_mode: str = "cow",
        queue_limit: int = 256,
        max_inflight: int = 0,
        shard_timeout_s: float = 30.0,
        checkpoint_every: int = 1,
        rebuild_stagger: bool = True,
        check_invariants: bool = False,
        buffer_cache_blocks: int = 0,
        fault_plans: dict | None = None,
        kill_on_crash: bool = False,
        max_frame: int = wire.DEFAULT_MAX_FRAME,
        read_tier: str = "snapshot",
        max_batch_size: int = 16,
        max_batch_delay_us: int = 250,
        coalesce: bool = False,
        rebalance: bool = False,
        rebalance_policy: RebalancePolicy | None = None,
    ) -> None:
        if shards < 1:
            raise ValueError("gateway needs shards >= 1")
        if replicas < 1:
            raise ValueError("gateway needs replicas >= 1")
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if shard_timeout_s <= 0:
            raise ValueError("shard_timeout_s must be > 0")
        if read_tier not in ("snapshot", "immediate"):
            raise ValueError("read_tier must be 'snapshot' or 'immediate'")
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_batch_delay_us < 0:
            raise ValueError("max_batch_delay_us must be >= 0")
        if rebalance and read_tier == "immediate":
            # The immediate tier reads workers' live write buffers; a
            # relocation would need those buffers migrated mid-epoch,
            # which the split/merge protocol does not attempt.
            raise ValueError(
                "online rebalance requires read_tier='snapshot'"
            )
        self.max_batch_size = max_batch_size
        self.max_batch_delay_us = max_batch_delay_us
        self.coalesce = coalesce
        self.read_tier = read_tier
        self.nshards = shards
        self.replicas = replicas
        self.router_seed = router_seed
        self.queue_limit = queue_limit
        self.max_inflight = max_inflight or 2 * shards * replicas
        self.shard_timeout_s = shard_timeout_s
        self.checkpoint_every = checkpoint_every
        self.max_frame = max_frame
        per_shard = max(1, buffer_cache_blocks // shards)
        self._sets: list[ReplicaSet] = []
        for i in range(shards):
            base = WorkerSpec(
                shard_id=i,
                index_config=config,
                tokenizer_config=tokenizer_config,
                publish_mode=publish_mode,
                kill_on_crash=kill_on_crash,
                check_invariants=check_invariants,
                buffer_cache_blocks=(
                    per_shard if buffer_cache_blocks else 0
                ),
                max_frame=max_frame,
                read_tier=read_tier,
            )
            self._sets.append(
                ReplicaSet(i, replica_specs(base, replicas, fault_plans, i))
            )
        #: The versioned slice → shard map (epoch 0 routes exactly like
        #: the static ``shard_of``); structural moves publish successors.
        self.routing = RoutingTable.initial(shards, router_seed)
        #: Shard ids currently serving (retired sets stay in ``_sets``
        #: for in-flight readers but leave this list at cutover).
        self._active: list[int] = list(range(shards))
        #: Doc ids skipped by explicit-id ingest (skewed placement):
        #: they exist nowhere, so rebalance doc counts and relocation
        #: scans must not treat them as live victim documents.
        self._holes: set[int] = set()
        self.rebalance = RebalanceStats()
        #: Serializes grow_buckets rebuilds across shards (None = every
        #: shard grows the round its trigger fires, PR 5 behavior).
        #: With rebalancing on, one RebalancePlanner plays both roles —
        #: growth grants keep their FIFO staggering and the same object
        #: plans at most one split/merge per eligible flush round.
        if rebalance:
            self.rebalance_planner = RebalancePlanner(
                rebalance_policy or RebalancePolicy()
            )
            self.rebuild_scheduler = self.rebalance_planner
        else:
            self.rebalance_planner = None
            self.rebuild_scheduler = (
                RebuildScheduler() if rebuild_stagger else None
            )
        #: Debug knob: hold every rebuild this long before it starts, so
        #: tests can observe survivors serving while a victim recovers.
        self._rebuild_hold_s = 0.0
        # Writer-path state (single logical writer, asyncio-serialized).
        self._writer_lock: asyncio.Lock | None = None
        self._sem: asyncio.Semaphore | None = None
        self._pending = 0
        self._next_doc_id = 0
        self._deleted: set[int] = set()
        self._batches = 0
        self._snapshot_id = 0
        self._published_ndocs = 0
        self._published_deleted: frozenset = frozenset()
        self._published_versions: tuple[int, ...] = (0,) * shards
        self._published_mem_epochs: tuple[int, ...] = (
            (0,) * shards if read_tier == "immediate" else ()
        )
        self.stats = GatewayStats()
        self.repl = ReplicationStats()
        self.batching = BatchingStats()
        #: Single-flight table: coalesce key → in-flight evaluation.
        self._flights: dict[tuple, _Flight] = {}
        #: Debug knob: hold every flight leader this long between
        #: evaluating and resolving its future, so the staleness-guard
        #: regression test can interleave a flush deterministically.
        self._coalesce_hold_s = 0.0

    # -- PR 6 compatibility views -----------------------------------------

    @property
    def workers(self) -> list:
        """Primary (replica 0) worker processes, one per shard — the PR 6
        single-replica view the existing tests and tools address."""
        return [rs.replicas[0].worker for rs in self._sets]

    @property
    def _oplogs(self) -> list[list[tuple]]:
        return [rs.oplog for rs in self._sets]

    @property
    def _checkpoints(self) -> list[bytes | None]:
        return [rs.checkpoint for rs in self._sets]

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        """Spawn every replica of every shard and open its connection."""
        self._writer_lock = asyncio.Lock()
        self._sem = asyncio.Semaphore(self.max_inflight)
        await asyncio.gather(
            *(
                self._spawn(replica)
                for rs in self._sets
                for replica in rs.replicas
            )
        )

    async def _spawn(
        self, replica: Replica, spec: WorkerSpec | None = None
    ) -> None:
        worker = WorkerProcess(spec or replica.spec)
        reader, writer = await asyncio.open_connection(
            sock=worker.take_socket()
        )
        replica.worker = worker
        replica.reader = reader
        replica.writer = writer
        # The lock object must survive respawns: tasks queued on it at
        # rebuild time would otherwise race a new lock's holders onto one
        # StreamReader.
        if replica.lock is None:
            replica.lock = asyncio.Lock()
        replica.seq = itertools.count(1)
        replica.epoch += 1

    async def close(self) -> None:
        """Shut every replica down and reap the processes."""
        for rs in self._sets:
            for replica in rs.replicas:
                task = replica.rebuild_task
                if task is not None and not task.done():
                    task.cancel()
                    try:
                        await task
                    except (asyncio.CancelledError, Exception):  # noqa: BLE001
                        pass
                if replica.worker is None:
                    continue
                try:
                    await asyncio.wait_for(
                        self._locked_rpc(replica, "shutdown", ()),
                        timeout=5.0,
                    )
                except Exception:  # noqa: BLE001 - best-effort shutdown
                    pass
                if replica.writer is not None:
                    replica.writer.close()
                replica.worker.sock = None
                replica.worker.close(graceful=False)
                replica.worker = None

    # -- RPC core ---------------------------------------------------------

    async def _rpc(self, replica: Replica, method: str, args: tuple):
        """One request/response on a replica's stream.  Caller must hold
        (or be the sole owner of) the replica's connection lock."""
        request_id = next(replica.seq)
        stream_writer = replica.writer
        if stream_writer is None:
            raise WorkerDied(f"{replica.name} has no connection")
        header, payload = wire.encode_parts(
            wire.Request(request_id, method, args), self.max_frame
        )
        stream_writer.write(header)
        stream_writer.write(payload)
        await stream_writer.drain()
        while True:
            response = await wire.read_message_async(
                replica.reader, self.max_frame
            )
            if response is None:
                raise WorkerDied(
                    f"{replica.name} closed the connection during "
                    f"{method!r}"
                )
            if response.request_id != request_id:
                continue  # stale reply from a deadline-abandoned call
            if response.ok:
                return response.value
            raise RemoteWorkerError(
                f"{replica.name} {method}: {response.error}"
            )

    async def _locked_rpc(self, replica: Replica, method: str, args: tuple):
        async with replica.lock:
            return await self._rpc(replica, method, args)

    async def _call_replica(
        self,
        replica: Replica,
        method: str,
        *args,
        timeout: float | None = None,
    ):
        """One RPC to a specific replica with deadline accounting.

        The deadline covers the whole request: waiting for the replica's
        connection (a worker mid-flush queues its readers) plus
        execution.  Death exceptions propagate raw — the caller decides
        between sibling failover and rebuild-and-wait.
        """
        try:
            coro = self._locked_rpc(replica, method, args)
            if timeout is not None:
                return await asyncio.wait_for(coro, timeout)
            return await coro
        except asyncio.TimeoutError:
            self.stats.deadline_exceeded += 1
            raise ShardDeadlineExceeded(
                (replica.shard_id,), method
            ) from None

    # -- failover ---------------------------------------------------------

    def _mark_recovering(
        self, rs: ReplicaSet, replica: Replica, observed_kill: bool
    ) -> None:
        """Transition a replica to RECOVERING and start its background
        rebuild.  Idempotent: concurrent observers of one death arrive
        here together and only the first transitions (state changes are
        synchronous on the event loop, so no lock is needed)."""
        if replica.state is ReplicaState.RECOVERING:
            return
        replica.state = ReplicaState.RECOVERING
        if observed_kill:
            self.stats.worker_kills_observed += 1
        self.stats.failovers += 1
        self.repl.rebuilds_started += 1
        replica.rebuild_task = asyncio.get_running_loop().create_task(
            self._rebuild(rs, replica)
        )

    def _note_death(self, rs: ReplicaSet, replica: Replica) -> None:
        self._mark_recovering(rs, replica, observed_kill=True)

    async def _rebuild(self, rs: ReplicaSet, replica: Replica) -> None:
        """Rebuild one replica: respawn from the shard checkpoint, then
        catch up on the shared op log.

        Runs as a background task; reads rotate to siblings meanwhile
        and writes skip this replica (its ``log_pos`` stays behind, so
        the catch-up loop — which re-reads ``len(oplog)`` after every
        await — picks up everything journaled during the rebuild).  The
        replica's lock is held throughout so no query reaches the
        replacement mid-replay.
        """
        if self._rebuild_hold_s:
            await asyncio.sleep(self._rebuild_hold_s)
        async with replica.lock:
            try:
                old = replica.worker
                if old is not None:
                    if replica.writer is not None:
                        replica.writer.close()
                    old.sock = None
                    old.close(graceful=False)
                    replica.worker = None
                spec = replica.spec.respawn_spec()
                spec.restore = rs.checkpoint
                await self._spawn(replica, spec)
                replica.log_pos = 0
                while True:
                    while replica.log_pos < len(rs.oplog):
                        op = rs.oplog[replica.log_pos]
                        self.stats.replayed_ops += 1
                        method, args = _op_rpc(op)
                        await self._rpc(replica, method, args)
                        replica.log_pos += 1
                    info = await self._rpc(replica, "info", ())
                    if replica.log_pos == len(rs.oplog):
                        # Nothing landed during the info call; between
                        # this check and the state flip there is no
                        # await, so the stamp below cannot go stale.
                        break
                replica.version = info["batches"]
                replica.mem_epoch = info.get("mem_epoch", 0)
                replica.wants_grow = info.get("wants_grow", False)
                replica.state = ReplicaState.HEALTHY
                self.repl.rebuilds_completed += 1
            except Exception:
                replica.state = ReplicaState.FAILED
                self.repl.rebuild_failures += 1
                raise

    async def quiesce(self) -> None:
        """Wait for every in-flight rebuild to finish (test/bench hook)."""
        while True:
            tasks = [
                replica.rebuild_task
                for rs in self._sets
                for replica in rs.replicas
                if replica.rebuild_task is not None
                and not replica.rebuild_task.done()
            ]
            if not tasks:
                return
            await asyncio.gather(*tasks, return_exceptions=True)

    def kill_replica(self, shard: int, replica: int = 0) -> None:
        """SIGKILL one replica's process (the chaos/bench murder weapon).

        Nothing is marked or rebuilt here — the gateway discovers the
        death exactly as it would a real machine failure: the next RPC
        on the broken connection.
        """
        target = self._sets[shard].replicas[replica]
        if target.worker is not None:
            target.worker.process.kill()

    # -- admission control ------------------------------------------------

    @asynccontextmanager
    async def _admit(self):
        """Bounded admission: at most ``max_inflight`` queries execute
        and at most ``queue_limit`` wait; beyond that, shed immediately
        (an overloaded open-loop arrival process must fail fast, not
        build an unbounded backlog)."""
        if self._pending >= self.max_inflight + self.queue_limit:
            self.stats.shed += 1
            raise GatewayOverloaded(self._pending, self.queue_limit)
        self._pending += 1
        try:
            await self._sem.acquire()
            try:
                yield
            finally:
                self._sem.release()
        finally:
            self._pending -= 1

    # -- writer path (single logical writer) ------------------------------

    def route(self, doc_id: int) -> int:
        return self.routing.route(doc_id)

    async def add_document(self, text: str, doc_id: int | None = None) -> int:
        async with self._writer_lock:
            if doc_id is None:
                doc_id = self._next_doc_id
            elif doc_id < self._next_doc_id:
                raise ValueError(
                    f"doc id {doc_id} below next id {self._next_doc_id}: "
                    "ids must be non-decreasing"
                )
            if doc_id > self._next_doc_id:
                self._holes.update(range(self._next_doc_id, doc_id))
            shard = self.route(doc_id)
            rs = self._sets[shard]
            # Journal before sending: if a replica dies mid-call, its
            # rebuild replay performs this very op, so no retry here.
            op = ("add", doc_id, text)
            rs.oplog.append(op)
            await self._fan_write(rs, op, len(rs.oplog) - 1)
            self._next_doc_id = doc_id + 1
            return doc_id

    async def delete_document(self, doc_id: int) -> None:
        if not 0 <= doc_id < self._next_doc_id:
            raise ValueError(
                f"doc id {doc_id} outside [0, {self._next_doc_id})"
            )
        if doc_id in self._holes:
            raise ValueError(f"doc id {doc_id} was never added")
        async with self._writer_lock:
            shard = self.route(doc_id)
            rs = self._sets[shard]
            op = ("delete", doc_id)
            rs.oplog.append(op)
            await self._fan_write(rs, op, len(rs.oplog) - 1)
            self._deleted.add(doc_id)

    async def _fan_write(
        self, rs: ReplicaSet, op: tuple, op_index: int
    ) -> list:
        """Apply one journaled op to every replica that can take it.

        Returns the per-replica results aligned with ``rs.replicas``
        (``None`` for replicas that skipped — mid-rebuild, dead, or
        already caught up past this op by their replay).
        """
        return list(
            await asyncio.gather(
                *(
                    self._write_replica(rs, replica, op, op_index)
                    for replica in rs.replicas
                )
            )
        )

    async def _write_replica(
        self, rs: ReplicaSet, replica: Replica, op: tuple, op_index: int
    ):
        """Send one op to one replica, guarded against double-apply.

        ``log_pos`` is the arbiter: a rebuild's catch-up replay and the
        writer's fan-out both target the same journal slot, and whichever
        holds the replica's lock first applies it — the other observes
        ``log_pos`` has moved past ``op_index`` and backs off.
        """
        if replica.state is not ReplicaState.HEALTHY:
            return None  # the rebuild's catch-up replay covers this op
        async with replica.lock:
            if replica.state is not ReplicaState.HEALTHY:
                return None
            if replica.log_pos > op_index:
                return None  # already applied via a rebuild replay
            if replica.log_pos < op_index:
                # A healthy replica behind the journal head means our
                # bookkeeping lied (should be impossible); resync it
                # rather than apply out of order.
                self._mark_recovering(rs, replica, observed_kill=False)
                return None
            method, args = _op_rpc(op)
            try:
                value = await self._rpc(replica, method, args)
            except self._DEATH:
                self._note_death(rs, replica)
                return None
            replica.log_pos = op_index + 1
            return value

    async def flush(self) -> tuple[BatchResult, GatewaySnapshot]:
        """Flush every shard (scatter), publish the new boundary, and
        return the aggregated batch result plus the boundary token.

        Growth grants are decided here — one scheduler round per flush —
        and journaled inside each shard's flush op, so all replicas of a
        shard (and any later op-log replay) grow at the same boundary.
        """
        async with self._writer_lock:
            self._batches += 1
            self.stats.flushes += 1
            active = list(self._active)
            wants = sorted(
                i for i in active if self._sets[i].wants_grow
            )
            if self.rebuild_scheduler is not None:
                granted = self.rebuild_scheduler.grant(wants)
            else:
                granted = frozenset(wants)
            op_indexes = {}
            for i in active:
                rs = self._sets[i]
                rs.oplog.append(("flush", i in granted))
                op_indexes[i] = len(rs.oplog) - 1
            outcomes = await asyncio.gather(
                *(self._flush_shard(i, op_indexes[i]) for i in active)
            )
            self._published_ndocs = self._next_doc_id
            self._published_deleted = frozenset(self._deleted)
            for i, outcome in zip(active, outcomes):
                rs = self._sets[i]
                rs.expected_version = outcome.version
                if self.read_tier == "immediate":
                    rs.expected_mem_epoch = outcome.mem_epoch
            self._refresh_published()
            self._snapshot_id += 1
            results = [
                outcome.result
                for outcome in outcomes
                if outcome.result is not None
            ]
            aggregate = BatchResult(
                batch=self._batches,
                nwords=sum(r.nwords for r in results),
                npostings=sum(r.npostings for r in results),
                new_words=sum(r.new_words for r in results),
                bucket_words=sum(r.bucket_words for r in results),
                long_words=sum(r.long_words for r in results),
                migrations=sum(r.migrations for r in results),
                io_ops=sum(r.io_ops for r in results),
                in_place_updates=sum(r.in_place_updates for r in results),
            )
            self.last_publish_seconds = max(
                (outcome.publish_seconds for outcome in outcomes),
                default=0.0,
            )
            if self._batches % self.checkpoint_every == 0:
                await asyncio.gather(
                    *(self._checkpoint_shard(i) for i in active)
                )
            await self._maybe_rebalance()
            return aggregate, self.snapshot()

    async def _flush_shard(self, i: int, op_index: int) -> FlushOutcome:
        """Fan one journaled flush op to shard ``i``'s replicas and pick
        the representative outcome (healthy replicas are deterministic
        copies, so any of them speaks for the shard)."""
        rs = self._sets[i]
        op = rs.oplog[op_index]
        results = await self._fan_write(rs, op, op_index)
        outcomes = []
        for replica, outcome in zip(rs.replicas, results):
            if outcome is None:
                continue
            replica.version = outcome.version
            replica.mem_epoch = outcome.mem_epoch
            replica.wants_grow = outcome.wants_grow
            outcomes.append(outcome)
        if outcomes:
            head = outcomes[0]
            for other in outcomes[1:]:
                if (other.version, other.ndocs) != (
                    head.version,
                    head.ndocs,
                ):
                    self.repl.replica_divergences += 1
            return head
        # Every replica was dead or mid-rebuild: the rebuild replay ends
        # with this very flush op, so wait one out and synthesize the
        # outcome from the rebuilt replica's state.
        replica = await self._await_any_rebuild(rs)
        info = await self._call_replica(replica, "info")
        return FlushOutcome(
            result=None,
            version=info["batches"],
            snapshot_version=info["snapshot_version"],
            ndocs=info["ndocs"],
            mem_epoch=info.get("mem_epoch", 0),
            wants_grow=info.get("wants_grow", False),
            occupancy=info.get("occupancy", 0.0),
            nbuckets=info.get("nbuckets", 0),
        )

    async def _await_any_rebuild(self, rs: ReplicaSet) -> Replica:
        """Block until some replica of the set is serviceable again."""
        for replica in rs.replicas:
            if replica.state is ReplicaState.HEALTHY:
                return replica
            task = replica.rebuild_task
            if task is None:
                continue
            try:
                await task
            except Exception:  # noqa: BLE001 - try the next replica
                continue
            if replica.state is ReplicaState.HEALTHY:
                return replica
        raise WorkerDied(
            f"shard {rs.shard_id}: no replica could be rebuilt"
        )

    async def _checkpoint_shard(self, i: int) -> None:
        """Refresh shard ``i``'s checkpoint and truncate its op log.

        Requires every replica healthy and caught up — a mid-rebuild
        replica still needs the log's tail for its catch-up replay, so
        the round is deferred (the old checkpoint + full log stay valid).
        The all-healthy condition is re-checked *after* the checkpoint
        RPC returns: a sibling may die during the await, and truncating
        under its in-flight rebuild would orphan the replay.
        """
        rs = self._sets[i]
        if not rs.caught_up():
            self.repl.checkpoints_deferred += 1
            return
        target = rs.replicas[0]
        try:
            blob = await self._locked_rpc(target, "checkpoint", ())
        except self._DEATH:
            self._note_death(rs, target)
            self.repl.checkpoints_deferred += 1
            return
        if not rs.caught_up():
            self.repl.checkpoints_deferred += 1
            return
        rs.checkpoint = blob
        rs.oplog.clear()
        for replica in rs.replicas:
            replica.log_pos = 0

    # -- rebalancing (online split / merge) --------------------------------

    def _refresh_published(self) -> None:
        """Rebuild the published version vector from the active sets'
        expected versions (the vector follows ``_active`` order, so a
        cutover that changes the active set changes the vector's length
        — which is itself an identity signal for ``_covers``)."""
        self._published_versions = tuple(
            self._sets[i].expected_version for i in self._active
        )
        if self.read_tier == "immediate":
            self._published_mem_epochs = tuple(
                self._sets[i].expected_mem_epoch for i in self._active
            )

    def _shard_doc_counts(self) -> dict[int, int]:
        """Live documents per active shard under the current routing
        (gateway bookkeeping only — no RPC)."""
        counts = {i: 0 for i in self._active}
        for doc_id in range(self._next_doc_id):
            if doc_id in self._deleted or doc_id in self._holes:
                continue
            counts[self.routing.route(doc_id)] += 1
        return counts

    async def _maybe_rebalance(self) -> None:
        """One planner round at a flush boundary (writer lock held)."""
        planner = self.rebalance_planner
        if planner is None:
            return
        counts = self._shard_doc_counts()
        self.rebalance.last_imbalance = planner.imbalance(counts)
        action = planner.plan(counts)
        if action is None:
            return
        if action[0] == "split":
            await self._split_locked(action[1])
        else:
            await self._merge_locked(action[1], action[2])

    async def split_shard(self, victim: int) -> int:
        """Split ``victim``'s hash slice onto a new shard, online.

        Returns the new shard's id.  Reads keep serving throughout: the
        answer stream is exact at every instant (see ``_split_locked``).
        """
        if self.read_tier == "immediate":
            raise ValueError(
                "online rebalance requires read_tier='snapshot'"
            )
        async with self._writer_lock:
            return await self._split_locked(victim)

    async def merge_shards(self, src: int, dst: int) -> int:
        """Merge shards ``src`` and ``dst`` into one new union shard,
        online; returns the union shard's id."""
        if self.read_tier == "immediate":
            raise ValueError(
                "online rebalance requires read_tier='snapshot'"
            )
        async with self._writer_lock:
            return await self._merge_locked(src, dst)

    async def _boundary_checkpoint(self, rs: ReplicaSet) -> bytes:
        """A fresh checkpoint of one shard's boundary state, with
        failover across replicas (writer lock held, so every healthy
        replica is at the same boundary)."""
        for replica in rs.replicas:
            if replica.state is not ReplicaState.HEALTHY:
                continue
            try:
                return await self._locked_rpc(replica, "checkpoint", ())
            except self._DEATH:
                self._note_death(rs, replica)
        replica = await self._await_any_rebuild(rs)
        return await self._locked_rpc(replica, "checkpoint", ())

    async def _boundary_export(self, rs: ReplicaSet) -> list:
        """One shard's live ``(doc_id, text)`` pairs at the boundary,
        with failover across replicas (writer lock held)."""
        for replica in rs.replicas:
            if replica.state is not ReplicaState.HEALTHY:
                continue
            try:
                return await self._locked_rpc(
                    replica, "export_documents", ()
                )
            except self._DEATH:
                self._note_death(rs, replica)
        replica = await self._await_any_rebuild(rs)
        return await self._locked_rpc(replica, "export_documents", ())

    async def _journal_and_apply(self, rs: ReplicaSet, op: tuple) -> None:
        rs.oplog.append(op)
        await self._fan_write(rs, op, len(rs.oplog) - 1)

    async def _flush_set(self, shard_id: int) -> None:
        """Journal and run one out-of-band flush on a single shard (a
        rebalance publish), then fold its new version into the published
        vector if the shard is active."""
        rs = self._sets[shard_id]
        rs.oplog.append(("flush", False))
        outcome = await self._flush_shard(shard_id, len(rs.oplog) - 1)
        rs.expected_version = outcome.version
        if shard_id in self._active:
            self._refresh_published()
            self._snapshot_id += 1

    def _spawned_set(
        self, new_id: int, restore: bytes | None
    ) -> ReplicaSet:
        """A ReplicaSet for a brand-new shard id (not yet spawned or
        registered), specs derived from shard 0's base config."""
        base = dc_replace(
            self._sets[0].replicas[0].spec,
            shard_id=new_id,
            restore=restore,
            fault_plan=None,
        )
        rs = ReplicaSet(new_id, replica_specs(base, self.replicas, None, new_id))
        rs.checkpoint = restore
        return rs

    async def _split_locked(self, victim: int) -> int:
        """The split protocol (writer lock held, at a flush boundary).

        1. Checkpoint the victim and spawn the new shard's replica set
           from that blob — a byte-copy of the victim, invisible to
           readers until cutover.
        2. Tombstone the *stayers* on the new shard (journaled deletes,
           so a replica rebuild replays them) and flush it.
        3. Cut over synchronously: publish the split routing table, add
           the shard to the active list, extend the published vector,
           bump the snapshot id.  From this instant reads scatter to the
           new shard too; the victim still holds the movers, so both
           shards briefly answer for them — ``merge_unique`` in the
           scatter merges keeps answers exact through the overlap.
        4. Tombstone the *movers* on the victim and flush it, closing
           the overlap window.

        No step loses availability: every read throughout is served
        from published per-shard snapshots.
        """
        if victim not in self._active:
            raise ValueError(f"shard {victim} is not an active shard")
        new_id = len(self._sets)
        table = self.routing.split(victim, new_id)
        vrs = self._sets[victim]
        blob = await self._boundary_checkpoint(vrs)
        movers, stayers = [], []
        for doc_id in range(self._next_doc_id):
            if doc_id in self._deleted or doc_id in self._holes:
                continue
            if self.routing.route(doc_id) != victim:
                continue
            if table.route(doc_id) == new_id:
                movers.append(doc_id)
            else:
                stayers.append(doc_id)
        rs = self._spawned_set(new_id, blob)
        await asyncio.gather(*(self._spawn(r) for r in rs.replicas))
        self._sets.append(rs)
        for doc_id in stayers:
            await self._journal_and_apply(rs, ("delete", doc_id))
        await self._flush_set(new_id)
        # -- cutover (synchronous: atomic w.r.t. the event loop) --
        cut_started = time.perf_counter()
        self.routing = table
        self._active.append(new_id)
        self.nshards = len(self._active)
        self._refresh_published()
        self._snapshot_id += 1
        # -- retire the movers from the victim --
        for doc_id in movers:
            await self._journal_and_apply(vrs, ("delete", doc_id))
        await self._flush_set(victim)
        window = time.perf_counter() - cut_started
        await self._checkpoint_shard(victim)
        await self._checkpoint_shard(new_id)
        self.rebalance.splits += 1
        self.rebalance.docs_moved += len(movers)
        self.rebalance.cutover_seconds += window
        self.rebalance.last_cutover_seconds = window
        return new_id

    async def _merge_locked(self, src: int, dst: int) -> int:
        """The merge protocol (writer lock held, at a flush boundary).

        Both shards' live documents are exported (vocabulary-scan text
        reconstruction at the worker — exact because postings are
        word-per-document sets), replayed in ascending doc-id order into
        a brand-new union shard, and flushed there; the cutover then
        atomically publishes a routing table whose slots all point at
        the union shard and retires both sources.  Readers in flight
        finish against the retired sets (their processes stay up); new
        reads scatter to the union shard, whose content is identical to
        the pair's at this frozen boundary.
        """
        if src == dst:
            raise ValueError("cannot merge a shard with itself")
        for shard_id in (src, dst):
            if shard_id not in self._active:
                raise ValueError(
                    f"shard {shard_id} is not an active shard"
                )
        new_id = len(self._sets)
        table = self.routing.reassign({src: new_id, dst: new_id})
        exports: dict[int, str] = {}
        for shard_id in (src, dst):
            exports.update(
                await self._boundary_export(self._sets[shard_id])
            )
        rs = self._spawned_set(new_id, None)
        await asyncio.gather(*(self._spawn(r) for r in rs.replicas))
        self._sets.append(rs)
        for doc_id in sorted(exports):
            await self._journal_and_apply(
                rs, ("add", doc_id, exports[doc_id])
            )
        # Exports omit postings-free documents; pad the union shard's
        # watermark so any later routed delete stays in range (an empty
        # add carries no postings, so answers are unaffected).
        head = self._next_doc_id
        if head and (not exports or max(exports) != head - 1):
            await self._journal_and_apply(rs, ("add", head - 1, ""))
        await self._flush_set(new_id)
        # -- cutover (synchronous: atomic w.r.t. the event loop) --
        cut_started = time.perf_counter()
        self.routing = table
        self._active = [
            i for i in self._active if i not in (src, dst)
        ] + [new_id]
        self.nshards = len(self._active)
        self._sets[src].retired = True
        self._sets[dst].retired = True
        self._refresh_published()
        self._snapshot_id += 1
        window = time.perf_counter() - cut_started
        await self._checkpoint_shard(new_id)
        self.rebalance.merges += 1
        self.rebalance.docs_moved += len(exports)
        self.rebalance.cutover_seconds += window
        self.rebalance.last_cutover_seconds = window
        return new_id

    def rebalance_report(self) -> dict:
        """The ``rebalance`` stats section (no RPC)."""
        report = self.rebalance.as_dict()
        report["routing_epoch"] = self.routing.epoch
        report["active_shards"] = list(self._active)
        report["routing"] = self.routing.as_dict()
        report["enabled"] = self.rebalance_planner is not None
        if self.rebalance_planner is not None:
            report["planner"] = self.rebalance_planner.as_dict()
        return report

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> GatewaySnapshot:
        """The current published boundary's identity token (no RPC)."""
        return GatewaySnapshot(
            snapshot_id=self._snapshot_id,
            ndocs=self._published_ndocs,
            deleted=self._published_deleted,
            shard_versions=self._published_versions,
            mem_epochs=self._published_mem_epochs,
            routing_epoch=self.routing.epoch,
        )

    # -- read path (replicated scatter-gather) ----------------------------

    def _universe(
        self, snapshot: GatewaySnapshot | None
    ) -> tuple[int, frozenset]:
        """The evaluation universe: the pinned boundary's, the latest
        published one, or — on the immediate tier — the *live* writer
        state (every acknowledged add/delete, flushed or not), which is
        exactly the universe the workers' buffered postings live in."""
        if self.read_tier == "immediate":
            return self._next_doc_id, frozenset(self._deleted)
        if snapshot is not None:
            return snapshot.ndocs, snapshot.deleted
        return self._published_ndocs, self._published_deleted

    def _tier(self) -> str | None:
        return "immediate" if self.read_tier == "immediate" else None

    # -- single-flight coalescing -----------------------------------------

    def _admission_token(self) -> tuple:
        """Everything a read's answer may depend on, each component
        monotone: the publish counter and version vector (snapshot-tier
        answers change only at a publish boundary) plus — on the
        immediate tier — the published mem epochs and the live writer
        universe (doc-id head, deletion count), since immediate answers
        reflect every acknowledged write."""
        token = (
            self._snapshot_id,
            self.routing.epoch,
        ) + self._published_versions
        if self.read_tier == "immediate":
            token += self._published_mem_epochs + (
                self._next_doc_id,
                len(self._deleted),
            )
        return token

    async def _single_flight(self, key: tuple, run):
        """Run ``run()`` once per concurrent identical evaluation.

        A waiter joins an existing flight only when the flight's
        admission token covers its own (:func:`_covers`) — the
        correctness guard: a coalesced answer must never be stamped
        older than the waiter's admission point.  A flight admitted
        before a flush is therefore unjoinable after it, even while its
        future is still unresolved.
        """
        if not self.coalesce:
            return await run()
        admission = self._admission_token()
        flight = self._flights.get(key)
        if flight is not None:
            if _covers(flight.token, admission):
                self.batching.coalesce_hits += 1
                return await asyncio.shield(flight.future)
            self.batching.coalesce_stale_skips += 1
        self.batching.coalesce_misses += 1
        future = asyncio.get_running_loop().create_future()
        future.add_done_callback(_retrieve)
        flight = _Flight(admission, future)
        # Last-admitted wins the table slot: our token is the freshest,
        # so later arrivals get the most joinable flight.
        self._flights[key] = flight
        try:
            result = await run()
        except BaseException as exc:
            if not future.done():
                future.set_exception(exc)
            raise
        else:
            if self._coalesce_hold_s:
                await asyncio.sleep(self._coalesce_hold_s)
            if not future.done():
                future.set_result(result)
            return result
        finally:
            if self._flights.get(key) is flight:
                del self._flights[key]

    async def _read_shard(
        self,
        i: int,
        method: str,
        args: tuple,
        _retried: bool = False,
    ):
        """One logical read on shard ``i``, served by any valid replica.

        Rotates round-robin over the eligible replicas (healthy, caught
        up, at the published version — the version-vector guard).  Every
        answer arrives stamped ``(value, version, mem_epoch)`` and a
        stamp trailing the published vector is discarded — the replica
        lied about being current, so it is pulled from rotation and
        resynced while the read fails over to a sibling.  Deadline
        misses and deaths fail over the same way.  Only when no replica
        is serviceable does the read wait for a rebuild: with one
        replica per shard that is the (PR 6) full-recovery-latency path;
        with two or more it never happens for a single failure.
        """
        rs = self._sets[i]
        rotation = rs.rotation()
        attempts = 0
        timed_out = False
        for replica in rotation:
            attempts += 1
            try:
                if self.max_batch_size > 1:
                    value, version, mem_epoch = await self._batched_read(
                        replica, method, args
                    )
                else:
                    self.batching.single_read_frames += 1
                    value, version, mem_epoch = await self._call_replica(
                        replica,
                        "versioned_read",
                        method,
                        args,
                        timeout=self.shard_timeout_s,
                    )
            except ShardDeadlineExceeded:
                timed_out = True
                continue
            except self._DEATH:
                self._note_death(rs, replica)
                continue
            if (
                version < rs.expected_version
                or mem_epoch < rs.expected_mem_epoch
            ):
                # The stamp trails the published boundary: the answer
                # cannot be trusted and neither can the replica's
                # bookkeeping — discard and resync.
                self.repl.stale_discarded += 1
                self._mark_recovering(rs, replica, observed_kill=False)
                continue
            self.repl.reads_served += 1
            if attempts > 1 or len(rotation) < len(rs.replicas):
                self.repl.read_failovers += 1
            return value
        if timed_out:
            # At least one live replica just ran over its deadline: this
            # is backpressure, not data loss — surface it.
            raise ShardDeadlineExceeded((i,), method)
        if _retried:
            raise WorkerDied(
                f"shard {i} has no serviceable replica for {method!r}"
            )
        # Every replica is down or mid-rebuild: wait one rebuild out and
        # retry once against the recovered set.
        self.repl.reads_waited_for_rebuild += 1
        await self._await_any_rebuild(rs)
        return await self._read_shard(i, method, args, _retried=True)

    async def _batched_read(
        self, replica: Replica, method: str, args: tuple
    ):
        """One member read via the replica's micro-batcher.

        The deadline covers the member individually — the window wait,
        queueing behind the connection's writes, and batch execution —
        exactly the span ``_call_replica`` covers unbatched.  The future
        is shielded because the batch RPC is shared with batchmates: one
        member's deadline must abandon its answer, not cancel theirs.
        """
        batcher = replica.batcher
        if batcher is None:
            batcher = replica.batcher = _ReadBatcher(self, replica)
        future = batcher.enqueue(method, args)
        try:
            return await asyncio.wait_for(
                asyncio.shield(future), self.shard_timeout_s
            )
        except asyncio.TimeoutError:
            self.stats.deadline_exceeded += 1
            raise ShardDeadlineExceeded(
                (replica.shard_id,), method
            ) from None

    async def _scatter_words(self, words, tier: str | None = None) -> tuple:
        """Fetch every word from every shard concurrently.

        Returns ``(fetch, counter)`` mirroring
        :func:`repro.query.scatter.scatter_fetch`: ``fetch(word)`` serves
        the pre-merged posting list and charges the word's summed scatter
        cost into ``counter[0]`` *per call* — the evaluators fetch once
        per word occurrence, and read-op parity with the in-process path
        requires charging exactly as often as they fetch.
        """
        words = sorted(set(words))
        active = list(self._active)
        tasks = [
            self._read_shard(i, "fetch_postings", (word, None, tier))
            for word in words
            for i in active
        ]
        fetched = await self._gather_with_deadlines(
            tasks, "fetch_postings"
        )
        fan = len(active)
        merged: dict[str, tuple[list[int], int]] = {}
        for w, word in enumerate(words):
            runs = []
            cost = 0
            for k in range(fan):
                docs, read_ops = fetched[w * fan + k]
                cost += read_ops
                if docs:
                    runs.append(docs)
            # merge_unique == merge_disjoint on disjoint runs; during a
            # split's relocation window it also hides the brief overlap.
            merged[word] = (scatter.merge_unique(runs), cost)
        counter = [0]

        def fetch(word: str) -> list[int]:
            docs, cost = merged.get(word, ([], 0))
            counter[0] += cost
            return docs

        return fetch, counter

    async def _gather_with_deadlines(self, tasks, method: str) -> list:
        results = await asyncio.gather(*tasks, return_exceptions=True)
        late = tuple(
            sorted(
                {
                    shard
                    for result in results
                    if isinstance(result, ShardDeadlineExceeded)
                    for shard in result.shards
                }
            )
        )
        if late:
            completed = sum(
                not isinstance(result, Exception) for result in results
            )
            raise ShardDeadlineExceeded(late, method, completed)
        for result in results:
            if isinstance(result, Exception):
                raise result
        return list(results)

    async def search_boolean(
        self, query: str, snapshot: GatewaySnapshot | None = None
    ) -> QueryAnswer:
        async with self._admit():
            terms, _ = _boolean_terms(query)  # uniform rejection up front
            key = (
                "boolean",
                query,
                self.read_tier,
                None if snapshot is None else snapshot.snapshot_id,
            )
            return await self._single_flight(
                key, lambda: self._boolean_once(query, snapshot)
            )

    async def _boolean_once(
        self, query: str, snapshot: GatewaySnapshot | None
    ) -> QueryAnswer:
        ndocs, deleted = self._universe(snapshot)
        terms, _ = _boolean_terms(query)
        fetch, counter = await self._scatter_words(
            terms, tier=self._tier()
        )
        docs = boolean_query.evaluate(query, fetch, ndocs)
        # Per-shard fetches are deletion-filtered, but NOT's
        # complement still contains deleted ids (paper §3: filter
        # every answer).
        if deleted:
            docs = [d for d in docs if d not in deleted]
        else:
            docs = list(docs)
        return QueryAnswer(doc_ids=docs, read_ops=counter[0])

    async def search_streamed(
        self, query: str, snapshot: GatewaySnapshot | None = None
    ) -> QueryAnswer:
        async with self._admit():
            streaming_query.parse_flat(query)  # uniform rejection up front
            key = (
                "streamed",
                query,
                self.read_tier,
                None if snapshot is None else snapshot.snapshot_id,
            )
            return await self._single_flight(
                key, lambda: self._streamed_once(query)
            )

    async def _streamed_once(self, query: str) -> QueryAnswer:
        tasks = [
            self._read_shard(
                i, "search_streamed", (query, None, self._tier())
            )
            for i in list(self._active)
        ]
        answers = await self._gather_with_deadlines(
            tasks, "search_streamed"
        )
        # gather_answers merges disjoint runs; merge_unique additionally
        # hides a split's brief relocation overlap (identical output on
        # the steady-state disjoint shape).
        docs = scatter.merge_unique([a.doc_ids for a in answers])
        read_ops = sum(a.read_ops for a in answers)
        return QueryAnswer(doc_ids=docs, read_ops=read_ops)

    async def search_vector(
        self,
        weights,
        top_k: int = 10,
        snapshot: GatewaySnapshot | None = None,
    ):
        ranked, _ = await self.search_vector_counted(
            weights, top_k=top_k, snapshot=snapshot
        )
        return ranked

    async def search_vector_counted(
        self,
        weights,
        top_k: int = 10,
        snapshot: GatewaySnapshot | None = None,
    ):
        async with self._admit():
            key = (
                "vector",
                tuple(sorted(weights.items())),
                top_k,
                self.read_tier,
                None if snapshot is None else snapshot.snapshot_id,
            )
            return await self._single_flight(
                key, lambda: self._vector_once(weights, top_k, snapshot)
            )

    async def _vector_once(
        self, weights, top_k: int, snapshot: GatewaySnapshot | None
    ):
        ndocs, _ = self._universe(snapshot)
        # The ranker skips zero-weight terms without fetching them;
        # prefetch exactly what it will fetch (raw keys — vocabulary
        # lookup owns normalization).
        terms = [w for w, weight in weights.items() if weight != 0.0]
        fetch, counter = await self._scatter_words(
            terms, tier=self._tier()
        )
        ranked = vector_query.rank(weights, fetch, ndocs, top_k=top_k)
        return ranked, counter[0]

    async def ping(
        self,
        shard: int = 0,
        delay: float = 0.0,
        timeout: float | None = None,
        admit: bool = False,
        replica: int = 0,
    ) -> dict:
        """Worker liveness probe; ``delay`` blocks the worker loop that
        long first (the deadline/backpressure tests lean on this).
        Targets one specific replica — it is a probe of a process, not a
        balanced read."""
        if admit:
            async with self._admit():
                return await self._ping_replica(
                    shard, replica, delay, timeout
                )
        return await self._ping_replica(shard, replica, delay, timeout)

    async def _ping_replica(
        self, shard: int, replica_id: int, delay: float,
        timeout: float | None,
    ) -> dict:
        rs = self._sets[shard]
        target = rs.replicas[replica_id]
        method = "debug_sleep" if delay else "ping"
        args = (delay,) if delay else ()
        try:
            return await self._call_replica(
                target, method, *args, timeout=timeout
            )
        except self._DEATH:
            self._note_death(rs, target)
            await self._await_any_rebuild(rs)
            return await self._call_replica(
                target, method, *args, timeout=timeout
            )

    # -- introspection ----------------------------------------------------

    async def check(self) -> InvariantReport:
        """Invariant-check every replica's published snapshot; merged
        report with shard/replica-prefixed violations.  Quiesces first so
        a mid-rebuild replica is checked in its recovered state."""
        await self.quiesce()
        report = InvariantReport()
        for i, rs in enumerate(self._sets):
            for replica in rs.replicas:
                if replica.state is not ReplicaState.HEALTHY:
                    continue
                sub = await self._call_replica(replica, "check")
                report.checks += sub.checks
                for violation in sub.violations:
                    report.violations.append(
                        Violation(
                            violation.code,
                            f"shard {i}/r{replica.replica_id}: "
                            f"{violation.detail}",
                        )
                    )
        return report

    async def worker_stats(self) -> list[dict]:
        stats = []
        for i, rs in enumerate(self._sets):
            for replica in rs.replicas:
                if replica.state is not ReplicaState.HEALTHY:
                    continue
                entry = dict(
                    await self._call_replica(replica, "stats")
                )
                entry["shard"] = i
                entry["replica"] = replica.replica_id
                stats.append(entry)
        return stats

    async def buffer_stats(self) -> list[dict]:
        stats = []
        for rs in self._sets:
            healthy = rs.healthy()
            if not healthy:
                stats.append({})
                continue
            stats.append(
                await self._call_replica(healthy[0], "buffer_stats")
            )
        return stats

    def replication_stats(self) -> dict:
        """The report's ``replication`` section (no RPC)."""
        merged = self.repl.as_dict()
        merged["replicas"] = self.replicas
        merged["rebuild_stagger"] = self.rebuild_scheduler is not None
        if self.rebuild_scheduler is not None:
            merged["scheduler"] = self.rebuild_scheduler.as_dict()
        merged["shards"] = [rs.describe() for rs in self._sets]
        return merged


class GatewayService:
    """Thread-safe synchronous facade over :class:`AsyncShardGateway`.

    Presents the :class:`~repro.service.server.QueryService` surface —
    ``add_document`` / ``delete_document`` / ``flush_and_publish`` /
    ``snapshot`` / ``search_*`` plus ``stats`` / ``timings`` /
    ``publish_latency`` — so :class:`~repro.service.loadgen.LoadGenerator`
    and the CLI drive both serving stacks through one code path.  The
    asyncio loop runs on a dedicated thread; every public method is safe
    to call from any thread.
    """

    def __init__(self, *args, **kwargs) -> None:
        self.gateway = AsyncShardGateway(*args, **kwargs)
        self.shards = self.gateway.nshards
        self.replicas = self.gateway.replicas
        self.read_tier = self.gateway.read_tier
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="gateway-loop", daemon=True
        )
        self._thread.start()
        self.stats = ServiceStats()
        self.timings = StageTimings()
        self.publish_latency = LatencyRecorder()
        # The gateway serves without a parent-side result cache (workers
        # are the authority); an idle cache keeps the report shape.
        self.cache = QueryResultCache(1)
        self.buffer_counters = None
        self._stats_lock = threading.Lock()
        self._closed = False
        self._run(self.gateway.start())

    def _run(self, coro):
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result()

    # -- writer API -------------------------------------------------------

    def add_document(self, text: str, doc_id: int | None = None) -> int:
        with self.timings.stage("serve.ingest"):
            doc_id = self._run(
                self.gateway.add_document(text, doc_id=doc_id)
            )
        with self._stats_lock:
            self.stats.documents_ingested += 1
        return doc_id

    def delete_document(self, doc_id: int) -> None:
        self._run(self.gateway.delete_document(doc_id))
        with self._stats_lock:
            self.stats.documents_deleted += 1

    def flush_and_publish(self) -> tuple[BatchResult, GatewaySnapshot]:
        with self.timings.stage("serve.flush"):
            result, snapshot = self._run(self.gateway.flush())
        self.publish_latency.record(self.gateway.last_publish_seconds)
        with self._stats_lock:
            self.stats.publishes += 1
        return result, snapshot

    # -- reader API -------------------------------------------------------

    def snapshot(self) -> GatewaySnapshot:
        return self.gateway.snapshot()

    def _count_query(self, kind: str) -> None:
        with self._stats_lock:
            self.stats.queries[kind] = self.stats.queries.get(kind, 0) + 1

    def search_boolean(
        self, query: str, snapshot: GatewaySnapshot | None = None
    ) -> QueryAnswer:
        self._count_query("boolean")
        return self._run(self.gateway.search_boolean(query, snapshot))

    def search_streamed(
        self, query: str, snapshot: GatewaySnapshot | None = None
    ) -> QueryAnswer:
        self._count_query("streamed")
        return self._run(self.gateway.search_streamed(query, snapshot))

    def search_vector(
        self,
        weights,
        top_k: int = 10,
        snapshot: GatewaySnapshot | None = None,
    ):
        self._count_query("vector")
        return self._run(
            self.gateway.search_vector(weights, top_k=top_k, snapshot=snapshot)
        )

    # -- rebalance hooks --------------------------------------------------

    def split_shard(self, victim: int) -> int:
        """Split one shard's hash slice onto a new shard, online;
        returns the new shard id."""
        return self._run(self.gateway.split_shard(victim))

    def merge_shards(self, src: int, dst: int) -> int:
        """Merge two shards into a new union shard, online; returns the
        union shard's id."""
        return self._run(self.gateway.merge_shards(src, dst))

    @property
    def routing_epoch(self) -> int:
        return self.gateway.routing.epoch

    # -- replication hooks ------------------------------------------------

    def kill_replica(self, shard: int, replica: int = 0) -> None:
        """SIGKILL one replica (chaos/bench hook; safe from any thread —
        the process handle is parent-side)."""
        self.gateway.kill_replica(shard, replica)

    def wait_for_recovery(self) -> None:
        """Block until every in-flight replica rebuild completes."""
        self._run(self.gateway.quiesce())

    # -- introspection / lifecycle ----------------------------------------

    def check(self) -> InvariantReport:
        report = self._run(self.gateway.check())
        with self._stats_lock:
            self.stats.invariant_checks += 1
        return report

    def gateway_stats(self) -> dict:
        workers = self._run(self.gateway.worker_stats())
        merged = self.gateway.stats.as_dict()
        merged["workers"] = workers
        merged["read_tier"] = self.read_tier
        if self.read_tier == "immediate":
            merged["mem_epochs"] = list(self.gateway.snapshot().mem_epochs)
        for key in (
            "publishes",
            "cow_publishes",
            "full_clone_publishes",
            "cow_fallbacks",
            "flush_recoveries",
        ):
            merged[key] = sum(w.get(key, 0) for w in workers)
        merged["routing_epoch"] = self.gateway.routing.epoch
        merged["rebalance"] = self.gateway.rebalance_report()
        merged["replication"] = self.gateway.replication_stats()
        merged["batching"] = self.gateway.batching.as_dict()
        merged["batching"]["max_batch_size"] = self.gateway.max_batch_size
        merged["batching"]["max_batch_delay_us"] = (
            self.gateway.max_batch_delay_us
        )
        merged["batching"]["coalesce"] = self.gateway.coalesce
        return merged

    def buffer_stats(self) -> list[dict]:
        return self._run(self.gateway.buffer_stats())

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._run(self.gateway.close())
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10.0)
            self._loop.close()

    def __enter__(self) -> "GatewayService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
