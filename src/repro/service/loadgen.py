"""Mixed read/update load generation against the query service.

The paper's workload is "daily batches of NetNews articles absorbed while
queries keep arriving"; :class:`LoadGenerator` reproduces that shape in
miniature: one writer ingests documents and publishes a snapshot per
flush cycle while N reader threads issue a seeded mix of boolean,
streamed, and vector queries against whatever snapshot is current.

Measurements ride the :mod:`repro.pipeline.profiling` plumbing — stage
spans (``serve.ingest`` / ``serve.flush`` / ``serve.publish``) accumulate
in the service's :class:`StageTimings`, and every query latency lands in a
per-thread :class:`LatencyRecorder`, merged into p50/p95/p99 afterwards —
and are archived as ``BENCH_serving.json`` by ``repro serve-bench``.

With ``verify=True`` every answer is checked against the brute-force
reference model frozen into the snapshot that served it; a mismatch is a
*stale-read divergence* (a reader observed writer state that was never a
published batch boundary) and fails the run's report.  With
``crash_every > 0`` the generator installs a crash plan before every Nth
flush, cycling through the registered flush/checkpoint crash points, so
publication is exercised across writer crashes and recoveries.

Two arrival disciplines drive the readers:

* ``arrival="closed"`` (default): each reader issues its next query the
  moment the previous one returns — the classic closed loop, whose
  latency percentiles silently exclude the time a slow system makes the
  *next* request wait (coordinated omission).
* ``arrival="open"``: a deterministic Poisson schedule of
  ``arrival_queries`` arrivals at ``arrival_rate_qps`` is precomputed
  from the seed, and every recorded latency is ``completion −
  scheduled_arrival`` — queue wait included, so an overloaded system
  shows its true tail instead of throttling the load that measures it.

With ``doc_skew > 0`` the writer pins explicit doc ids whose hash lands
on a Zipf-drawn target shard, concentrating document mass on the low
shards; with ``rebalance=True`` (gateway only) the gateway's planner
answers that skew with online shard splits and merges at flush
boundaries, and the report's ``gateway.rebalance`` section records the
moves.

With ``gateway=True`` the service is a multi-process
:class:`~repro.service.gateway.GatewayService` (one worker process per
shard); per-query verification is unavailable across the process
boundary (``verify=False`` is required) and correctness is covered by
boundary differential probes against a parent-side brute-force mirror.
"""

from __future__ import annotations

import json
import random
import threading
import time
from dataclasses import dataclass, field

from ..core.index import IndexConfig
from ..pipeline.profiling import LatencyRecorder
from ..storage import faults
from ..storage.faults import FaultPlan
from .server import QueryService

#: Crash points cycled through by ``crash_every`` (update + publish paths).
CRASH_CYCLE = (
    "index.flush-begin",
    "index.before-word-append",
    "index.before-shadow-flush",
    "index.before-release",
    "index.before-clear",
    "checkpoint.mid-save",
    "checkpoint.cow-publish",
)


def _word_name(i: int) -> str:
    """Letters-only synthetic word: "wa", "wb", ... "wz", "waa", ...

    The tokenizer splits tokens at digit boundaries, so digit-suffixed
    names ("w1") would be indexed as "w" + "1" and every generated query
    would look up words that do not exist — answering over the empty set.
    """
    suffix = ""
    while i > 0:
        i, r = divmod(i - 1, 26)
        suffix = chr(ord("a") + r) + suffix
    return "w" + suffix


@dataclass(frozen=True)
class LoadConfig:
    """Shape of one serving-benchmark run (all randomness is seeded)."""

    readers: int = 4
    flush_cycles: int = 20
    docs_per_batch: int = 20
    vocabulary: int = 120
    words_per_doc: tuple[int, int] = (4, 12)
    seed: int = 0
    #: Fraction of queries per kind; normalized internally.
    mix: tuple[float, float, float] = (0.4, 0.4, 0.2)  # boolean/streamed/vector
    top_k: int = 10
    cache_capacity: int = 256
    verify: bool = True
    check_invariants: bool = True
    #: Every Nth ingested document triggers one random deletion (0 = never).
    delete_every: int = 0
    #: Install a crash plan before every Nth flush (0 = never).
    crash_every: int = 0
    #: Transient-I/O fault rate injected into the writer's disks.
    transient_rate: float = 0.0
    fault_seed: int = 0
    #: Seconds the writer sleeps between cycles so readers interleave.
    pace_s: float = 0.0
    #: How snapshots are published: "cow" (incremental copy-on-write)
    #: or "clone" (full checkpoint clone, the oracle).
    publish_mode: str = "cow"
    #: Block budget of the shared decoded-chunk cache (0 = disabled).
    buffer_cache_blocks: int = 128
    #: After every publish, compare the served snapshot against a fresh
    #: full-clone oracle over a probe query set (differential testing).
    differential: bool = False
    #: Probe queries per kind for each differential check.
    differential_probes: int = 4
    #: Document-hash shards (1 = the single-volume code path).
    shards: int = 1
    #: Router seed perturbing the doc-id hash (any value is valid).
    router_seed: int = 0
    #: Parallel per-shard flush workers (1 = serial).
    flush_jobs: int = 1
    flush_executor: str = "thread"
    #: Serve through one worker process per shard behind the asyncio
    #: scatter-gather gateway instead of in-process scatter.
    gateway: bool = False
    #: Gateway per-shard query deadline (seconds).
    shard_timeout_s: float = 30.0
    #: Gateway admission-control wait-queue bound.
    queue_limit: int = 256
    #: Concurrently executing gateway queries (0 = 2 × shards).
    max_inflight: int = 0
    #: Parent-side worker checkpoint cadence, in flushes.
    checkpoint_every: int = 1
    #: Worker processes per shard (gateway only; >1 adds read failover).
    replicas: int = 1
    #: Serialize grow_buckets rebuilds across shards (gateway only).
    rebuild_stagger: bool = True
    #: Build the volumes with bucket-space growth enabled.
    grow_buckets: bool = False
    #: Occupancy threshold that triggers a growth round.
    growth_threshold: float = 0.75
    #: Reader arrival discipline: "closed" or "open" (see module doc).
    arrival: str = "closed"
    #: Open-loop offered rate (arrivals per second).
    arrival_rate_qps: float = 500.0
    #: Open-loop total scheduled arrivals.
    arrival_queries: int = 2000
    #: "snapshot" serves published boundaries only; "immediate" merges
    #: the memory tier in so ingested documents are visible pre-flush.
    read_tier: str = "snapshot"
    #: Drain the memory tier with a background merge thread instead of
    #: the writer's per-cycle flush (immediate tier, in-process only).
    background_merge: bool = False
    #: Per-cycle ingest-to-first-hit probes (one extra document per
    #: cycle).  None probes only when ``read_tier == "immediate"``;
    #: True forces probing (how the snapshot arm of BENCH_memtier
    #: measures its flush-cycle visibility floor); False disables.
    visibility_probes: bool | None = None
    #: Gateway read micro-batch cap (1 = the unbatched PR 6 wire
    #: protocol, frame for frame).
    batch_size: int = 16
    #: Ceiling of the adaptive batch-flush delay window (microseconds).
    batch_delay_us: int = 250
    #: Single-flight coalescing of identical concurrent queries.
    coalesce: bool = False
    #: Zipf exponent skewing document *placement* across shards: the
    #: writer pins explicit doc ids whose epoch-0 hash lands on a
    #: Zipf-drawn target shard (shard 0 hottest).  0 = off — writer
    #: assigned sequential ids, byte-identical to the unskewed path.
    doc_skew: float = 0.0
    #: Let the gateway split hot shards / merge cold ones online when
    #: per-shard live-doc skew exceeds the planner bound (gateway only).
    rebalance: bool = False
    #: Planner bound: split when max/mean imbalance exceeds this.
    rebalance_threshold: float = 1.5

    def __post_init__(self) -> None:
        if self.readers <= 0 or self.flush_cycles <= 0:
            raise ValueError("readers and flush_cycles must be > 0")
        if self.docs_per_batch <= 0 or self.vocabulary <= 0:
            raise ValueError("docs_per_batch and vocabulary must be > 0")
        if len(self.mix) != 3 or sum(self.mix) <= 0 or min(self.mix) < 0:
            raise ValueError("mix must be three non-negative weights")
        if self.publish_mode not in ("clone", "cow"):
            raise ValueError("publish_mode must be 'clone' or 'cow'")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.arrival not in ("closed", "open"):
            raise ValueError("arrival must be 'closed' or 'open'")
        if self.arrival == "open" and (
            self.arrival_rate_qps <= 0 or self.arrival_queries <= 0
        ):
            raise ValueError(
                "open arrivals need arrival_rate_qps and "
                "arrival_queries > 0"
            )
        if self.gateway and self.verify:
            raise ValueError(
                "gateway mode cannot pin per-query reference snapshots "
                "across the process boundary; set verify=False "
                "(boundary differential probes still cover correctness)"
            )
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")
        if self.replicas > 1 and not self.gateway:
            raise ValueError(
                "replication runs worker processes behind the gateway; "
                "set gateway=True for replicas > 1"
            )
        if self.gateway and self.crash_every:
            raise ValueError(
                "gateway mode injects crashes per worker via fault "
                "plans (see the chaos battery), not crash_every"
            )
        if self.read_tier not in ("snapshot", "immediate"):
            raise ValueError(
                "read_tier must be 'snapshot' or 'immediate'"
            )
        if self.read_tier == "immediate" and self.verify:
            raise ValueError(
                "immediate-tier answers reflect the live memory tier, "
                "not a pinned reference snapshot; set verify=False "
                "(mid-buffer differential probes against the "
                "brute-force mirror cover correctness)"
            )
        if self.read_tier == "immediate" and self.crash_every:
            raise ValueError(
                "crash recovery rebuilds the writer from durable "
                "state, not the memory tier; use transient_rate for "
                "immediate-tier fault injection"
            )
        if self.background_merge:
            if self.read_tier != "immediate":
                raise ValueError(
                    "background_merge requires read_tier='immediate'"
                )
            if self.gateway:
                raise ValueError(
                    "background_merge drives the in-process "
                    "BackgroundMerger; gateway workers merge on flush"
                )
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.batch_delay_us < 0:
            raise ValueError("batch_delay_us must be >= 0")
        if self.doc_skew < 0.0:
            raise ValueError("doc_skew must be >= 0")
        if self.rebalance and not self.gateway:
            raise ValueError(
                "online rebalancing runs in the gateway's split/merge "
                "protocol; set gateway=True for rebalance"
            )
        if self.rebalance and self.read_tier == "immediate":
            raise ValueError(
                "rebalance cutovers are defined at publish boundaries; "
                "the immediate tier serves between them"
            )
        if self.rebalance_threshold <= 1.0:
            raise ValueError("rebalance_threshold must be > 1.0")

    @property
    def injects_faults(self) -> bool:
        return self.crash_every > 0 or self.transient_rate > 0.0

    def index_config(self) -> IndexConfig:
        """A small content-mode index; crash-safe when faults are on."""
        plan = (
            FaultPlan(
                seed=self.fault_seed, transient_rate=self.transient_rate
            )
            if self.transient_rate > 0.0
            else None
        )
        from ..core.rebalance import GrowthPolicy

        return IndexConfig(
            nbuckets=64,
            bucket_size=256,
            block_postings=16,
            ndisks=2,
            nblocks_override=500_000,
            store_contents=True,
            crash_safe=self.injects_faults,
            fault_plan=plan,
            grow_buckets=self.grow_buckets,
            growth=GrowthPolicy(
                occupancy_threshold=self.growth_threshold
            ),
        )


@dataclass(frozen=True)
class Arrival:
    """One scheduled open-loop arrival."""

    at_s: float  # offset from the run's start
    kind: str  # "boolean" | "streamed" | "vector"
    query: object  # the query string or weight map


def open_loop_arrivals(
    rate_qps: float,
    count: int,
    seed: int,
    mix: tuple[float, float, float],
    make_query,
) -> list[Arrival]:
    """A deterministic Poisson arrival schedule.

    Inter-arrival gaps are exponential with mean ``1/rate_qps``; kinds
    are drawn from ``mix``; ``make_query(kind, rng)`` builds each
    payload.  Everything — times, kinds, payloads — is a pure function
    of the seed, so two runs offered the same schedule are comparable
    sample-for-sample.
    """
    rng = random.Random(seed * 65537 + 11)
    kinds = ("boolean", "streamed", "vector")
    t = 0.0
    arrivals: list[Arrival] = []
    for _ in range(count):
        t += rng.expovariate(rate_qps)
        kind = rng.choices(kinds, weights=mix)[0]
        arrivals.append(Arrival(t, kind, make_query(kind, rng)))
    return arrivals


@dataclass
class ServingReport:
    """Machine-readable outcome of one load-generation run."""

    config: dict
    wall_seconds: float
    queries: int
    throughput_qps: float
    latency: dict[str, dict]
    cache: dict
    service: dict
    stage_seconds: dict[str, float]
    divergences: int
    divergence_examples: list[str] = field(default_factory=list)
    buffer_cache: dict = field(default_factory=dict)
    open_loop: dict = field(default_factory=dict)
    gateway: dict = field(default_factory=dict)
    #: Time-to-visibility probe digest (seconds from ingest to first hit).
    visibility: dict = field(default_factory=dict)
    #: Memory-tier counters (immediate tier only).
    memtier: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "config": self.config,
            "wall_seconds": round(self.wall_seconds, 6),
            "queries": self.queries,
            "throughput_qps": round(self.throughput_qps, 3),
            "latency": self.latency,
            "cache": self.cache,
            "buffer_cache": self.buffer_cache,
            "service": self.service,
            "stage_seconds": self.stage_seconds,
            "divergences": self.divergences,
            "divergence_examples": self.divergence_examples[:5],
            "open_loop": self.open_loop,
            "gateway": self.gateway,
            "visibility": self.visibility,
            "memtier": self.memtier,
        }

    def write_json(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fp:
            json.dump(self.as_dict(), fp, indent=2, sort_keys=True)
            fp.write("\n")


class _ReaderState:
    """One reader thread's private state: its seeded RNG and recorders.

    The RNG lives here (not in the reader loop, not shared) so each
    thread's query stream is deterministic for a given ``(seed,
    reader_id)`` regardless of interleaving — shared ``random.Random``
    instances are lock-protected but produce schedule-dependent
    sequences.
    """

    def __init__(self, seed: int, reader_id: int) -> None:
        self.rng = random.Random(seed * 7919 + reader_id)
        self.recorders = {
            kind: LatencyRecorder()
            for kind in ("boolean", "streamed", "vector")
        }
        self.divergences: list[str] = []
        self.shed = 0
        self.deadline_exceeded = 0


class LoadGenerator:
    """Drive a mixed reader/writer workload and measure it."""

    def __init__(
        self,
        config: LoadConfig | None = None,
        service: QueryService | None = None,
    ) -> None:
        self.config = config or LoadConfig()
        self._owns_service = service is None
        if service is not None:
            self.service = service
        elif self.config.gateway:
            from ..core.rebalance import RebalancePolicy
            from .gateway import GatewayService

            self.service = GatewayService(
                self.config.index_config(),
                shards=self.config.shards,
                replicas=self.config.replicas,
                rebuild_stagger=self.config.rebuild_stagger,
                router_seed=self.config.router_seed,
                publish_mode=self.config.publish_mode,
                queue_limit=self.config.queue_limit,
                max_inflight=self.config.max_inflight,
                shard_timeout_s=self.config.shard_timeout_s,
                checkpoint_every=self.config.checkpoint_every,
                check_invariants=self.config.check_invariants,
                buffer_cache_blocks=self.config.buffer_cache_blocks,
                read_tier=self.config.read_tier,
                max_batch_size=self.config.batch_size,
                max_batch_delay_us=self.config.batch_delay_us,
                coalesce=self.config.coalesce,
                rebalance=self.config.rebalance,
                rebalance_policy=RebalancePolicy(
                    max_imbalance=self.config.rebalance_threshold
                )
                if self.config.rebalance
                else None,
            )
        else:
            self.service = QueryService(
                self.config.index_config(),
                cache_capacity=self.config.cache_capacity,
                check_invariants=self.config.check_invariants,
                track_reference=self.config.verify,
                publish_mode=self.config.publish_mode,
                buffer_cache_blocks=self.config.buffer_cache_blocks,
                shards=self.config.shards,
                router_seed=self.config.router_seed,
                flush_jobs=self.config.flush_jobs,
                flush_executor=self.config.flush_executor,
                read_tier=self.config.read_tier,
            )
        self._words = [
            _word_name(i) for i in range(1, self.config.vocabulary + 1)
        ]
        # Skewed placement state: the next candidate explicit doc id and
        # the ids actually ingested (delete victims must be real docs —
        # the id gaps the scan leaves behind were never added).
        self._skew_next = 0
        self._skew_live: list[int] = []
        if self.config.doc_skew > 0.0:
            s = self.config.doc_skew
            self._skew_weights = [
                1.0 / (rank + 1) ** s for rank in range(self.config.shards)
            ]
        # Parent-side mirror for mirror-based differential probes:
        # gateway workers cannot hand the parent a clone oracle, and
        # immediate-tier answers are defined over *everything ingested*
        # (no batch boundary to clone at) — both compare against a
        # brute-force model of every ingested operation instead.
        self._mirror = None
        if self.config.differential and (
            self.config.gateway or self.config.read_tier == "immediate"
        ):
            from ..query.reference import BruteForceIndex

            self._mirror = BruteForceIndex()

    # -- deterministic generators -----------------------------------------

    def _skewed_doc_id(self, rng: random.Random) -> int:
        """Next explicit doc id, placed on a Zipf-drawn target shard.

        Draws the target from the epoch-0 shard set (shard 0 hottest),
        then scans candidate ids forward until the stable doc-id hash
        lands there — the same ``shard_of`` the router's epoch-0 table
        degenerates to, so where a document goes is decided entirely by
        the *workload*, not by the serving topology.  After an online
        split the hot slice's ids redistribute, but the id stream itself
        is unchanged: rebalanced and epoch-0 arms see identical ingests.
        """
        from ..core.shard import shard_of

        cfg = self.config
        target = rng.choices(
            range(cfg.shards), weights=self._skew_weights
        )[0]
        doc_id = self._skew_next
        while shard_of(doc_id, cfg.shards, cfg.router_seed) != target:
            doc_id += 1
        self._skew_next = doc_id + 1
        return doc_id

    def _skewed_word(self, rng: random.Random) -> str:
        """Zipf-ish draw: low word ids are hot, mirroring the corpus."""
        k = min(int(rng.paretovariate(0.8)), len(self._words))
        return self._words[k - 1]

    def _document(self, rng: random.Random) -> str:
        lo, hi = self.config.words_per_doc
        return " ".join(
            self._skewed_word(rng) for _ in range(rng.randint(lo, hi))
        )

    def _boolean_query(self, rng: random.Random) -> str:
        a, b, c = (self._skewed_word(rng) for _ in range(3))
        return rng.choice(
            [
                f"{a} AND {b}",
                f"{a} OR {b}",
                f"({a} AND {b}) OR {c}",
                f"{a} AND NOT {b}",
            ]
        )

    def _streamed_query(self, rng: random.Random) -> str:
        op = rng.choice(["AND", "OR"])
        words = [self._skewed_word(rng) for _ in range(rng.randint(2, 3))]
        return f" {op} ".join(words)

    def _vector_query(self, rng: random.Random) -> dict[str, float]:
        return {
            self._skewed_word(rng): float(rng.randint(1, 3))
            for _ in range(rng.randint(2, 5))
        }

    def _make_query(self, kind: str, rng: random.Random):
        if kind == "boolean":
            return self._boolean_query(rng)
        if kind == "streamed":
            return self._streamed_query(rng)
        return self._vector_query(rng)

    def open_schedule(self) -> list[Arrival]:
        """This run's deterministic open-loop arrival schedule."""
        cfg = self.config
        return open_loop_arrivals(
            cfg.arrival_rate_qps,
            cfg.arrival_queries,
            cfg.seed,
            cfg.mix,
            self._make_query,
        )

    # -- reader threads ----------------------------------------------------

    def _verify(self, kind, query, got, snapshot, state) -> None:
        reference = snapshot.reference
        if reference is None:
            return
        if kind == "vector":
            want = reference.search_vector(query, top_k=self.config.top_k)
            ok = [(d.doc_id, d.score) for d in got] == [
                (d.doc_id, d.score) for d in want
            ]
        else:
            want = (
                reference.search_boolean(query)
                if kind == "boolean"
                else reference.search_streamed(query)
            )
            ok = got.doc_ids == want
        if not ok:
            state.divergences.append(
                f"snapshot {snapshot.snapshot_id} {kind} {query!r}: "
                f"served {got!r}, reference {want!r}"
            )

    def _reader_loop(
        self, reader_id: int, stop: threading.Event, state: _ReaderState
    ) -> None:
        try:
            self._reader_queries(reader_id, stop, state)
        except Exception as exc:  # noqa: BLE001 - must surface in the report
            # A dead reader thread must fail the run loudly, not shrink it.
            state.divergences.append(f"reader {reader_id} died: {exc!r}")

    def _reader_queries(
        self, reader_id: int, stop: threading.Event, state: _ReaderState
    ) -> None:
        rng = state.rng
        weights = self.config.mix
        kinds = ("boolean", "streamed", "vector")
        while not stop.is_set():
            kind = rng.choices(kinds, weights=weights)[0]
            # Pin the snapshot: the answer must be verified against the
            # exact reference model frozen with the state that served it.
            snapshot = self.service.snapshot()
            recorder = state.recorders[kind]
            if kind == "boolean":
                query = self._boolean_query(rng)
                with recorder.span():
                    got = self.service.search_boolean(query, snapshot)
            elif kind == "streamed":
                query = self._streamed_query(rng)
                with recorder.span():
                    got = self.service.search_streamed(query, snapshot)
            else:
                query = self._vector_query(rng)
                with recorder.span():
                    got = self.service.search_vector(
                        query, top_k=self.config.top_k, snapshot=snapshot
                    )
            if self.config.verify:
                self._verify(kind, query, got, snapshot, state)

    # -- open-loop readers -------------------------------------------------

    def _open_reader_loop(
        self,
        reader_id: int,
        arrivals: list[Arrival],
        cursor: list[int],
        cursor_lock: threading.Lock,
        t0: float,
        state: _ReaderState,
    ) -> None:
        try:
            self._open_reader_queries(
                arrivals, cursor, cursor_lock, t0, state
            )
        except Exception as exc:  # noqa: BLE001 - must surface in report
            state.divergences.append(f"reader {reader_id} died: {exc!r}")

    def _open_reader_queries(
        self,
        arrivals: list[Arrival],
        cursor: list[int],
        cursor_lock: threading.Lock,
        t0: float,
        state: _ReaderState,
    ) -> None:
        """Serve scheduled arrivals until the schedule is drained.

        Each latency sample is ``completion − scheduled_arrival``: when
        the service (or this reader pool) falls behind, the backlog wait
        lands *in* the measurement instead of silently delaying the
        offered load — the open-loop answer to coordinated omission.
        """
        from .gateway import GatewayOverloaded, ShardDeadlineExceeded

        while True:
            with cursor_lock:
                i = cursor[0]
                if i >= len(arrivals):
                    return
                cursor[0] = i + 1
            arrival = arrivals[i]
            now = time.perf_counter() - t0
            if now < arrival.at_s:
                time.sleep(arrival.at_s - now)
            snapshot = self.service.snapshot()
            try:
                if arrival.kind == "boolean":
                    got = self.service.search_boolean(
                        arrival.query, snapshot
                    )
                elif arrival.kind == "streamed":
                    got = self.service.search_streamed(
                        arrival.query, snapshot
                    )
                else:
                    got = self.service.search_vector(
                        arrival.query,
                        top_k=self.config.top_k,
                        snapshot=snapshot,
                    )
            except GatewayOverloaded:
                state.shed += 1  # a typed overload outcome, not a bug
                continue
            except ShardDeadlineExceeded:
                state.deadline_exceeded += 1
                continue
            state.recorders[arrival.kind].record(
                time.perf_counter() - t0 - arrival.at_s
            )
            if self.config.verify:
                self._verify(
                    arrival.kind, arrival.query, got, snapshot, state
                )

    # -- the writer + the run ---------------------------------------------

    def _maybe_crash_plan(self, cycle: int) -> bool:
        """Install a crash plan for this cycle; True when one is active."""
        if not self.config.crash_every:
            return False
        if cycle == 0 or cycle % self.config.crash_every:
            return False
        point = CRASH_CYCLE[
            (cycle // self.config.crash_every - 1) % len(CRASH_CYCLE)
        ]
        faults.install(FaultPlan(crash_at=point, crash_at_hit=1))
        return True

    def _differential_check(
        self, cycle: int, divergences: list[str]
    ) -> None:
        """Compare the served snapshot against a fresh full-clone oracle.

        Runs on the writer thread right after a publish, while the writer
        sits at the batch boundary: the full checkpoint clone is the
        known-good publication path, so any answer difference on the
        probe set indicts the incremental (cow) snapshot.
        """
        snapshot = self.service.snapshot()
        oracle = self.service.writer_index.clone()
        rng = random.Random(self.config.seed * 104729 + cycle)
        for _ in range(self.config.differential_probes):
            query = self._boolean_query(rng)
            got = snapshot.search_boolean(query).doc_ids
            want = oracle.search_boolean(query).doc_ids
            if got != want:
                divergences.append(
                    f"cycle {cycle} differential boolean {query!r}: "
                    f"served {got!r}, oracle {want!r}"
                )
        for _ in range(self.config.differential_probes):
            query = self._streamed_query(rng)
            got = snapshot.search_streamed(query).doc_ids
            want = oracle.search_streamed(query).doc_ids
            if got != want:
                divergences.append(
                    f"cycle {cycle} differential streamed {query!r}: "
                    f"served {got!r}, oracle {want!r}"
                )
        for _ in range(self.config.differential_probes):
            weights = self._vector_query(rng)
            got = [
                (d.doc_id, d.score)
                for d in snapshot.search_vector(
                    weights, top_k=self.config.top_k
                )
            ]
            want = [
                (d.doc_id, d.score)
                for d in oracle.search_vector(
                    weights, top_k=self.config.top_k
                )
            ]
            if got != want:
                divergences.append(
                    f"cycle {cycle} differential vector {weights!r}: "
                    f"served {got!r}, oracle {want!r}"
                )

    def _differential_check_mirror(
        self, cycle: int, divergences: list[str]
    ) -> None:
        """Mirror-based differential: probe served answers against the
        parent-side brute-force mirror of every ingested operation.

        Two callers share it.  Gateway snapshot mode runs it on the
        writer thread right after a flush, so the mirror and the
        workers' published snapshots coincide.  Immediate mode runs it
        *mid-buffer*, before any flush — served answers are defined
        over everything ingested, so they must match the mirror even
        while documents sit unpublished in the memory tier."""
        snapshot = self.service.snapshot()
        mirror = self._mirror
        rng = random.Random(self.config.seed * 104729 + cycle)
        for _ in range(self.config.differential_probes):
            query = self._boolean_query(rng)
            got = self.service.search_boolean(query, snapshot).doc_ids
            want = mirror.search_boolean(query)
            if got != want:
                divergences.append(
                    f"cycle {cycle} differential boolean {query!r}: "
                    f"served {got!r}, mirror {want!r}"
                )
        for _ in range(self.config.differential_probes):
            query = self._streamed_query(rng)
            got = self.service.search_streamed(query, snapshot).doc_ids
            want = mirror.search_streamed(query)
            if got != want:
                divergences.append(
                    f"cycle {cycle} differential streamed {query!r}: "
                    f"served {got!r}, mirror {want!r}"
                )
        for _ in range(self.config.differential_probes):
            weights = self._vector_query(rng)
            got = [
                (d.doc_id, d.score)
                for d in self.service.search_vector(
                    weights, top_k=self.config.top_k, snapshot=snapshot
                )
            ]
            want = [
                (d.doc_id, d.score)
                for d in mirror.search_vector(
                    weights, top_k=self.config.top_k
                )
            ]
            if got != want:
                divergences.append(
                    f"cycle {cycle} differential vector {weights!r}: "
                    f"served {got!r}, mirror {want!r}"
                )

    def run(self) -> ServingReport:
        """Execute the workload; returns the measured report."""
        try:
            return self._run()
        finally:
            if self._owns_service:
                closer = getattr(self.service, "close", None)
                if closer is not None:
                    closer()

    def _run(self) -> ServingReport:
        cfg = self.config
        stop = threading.Event()
        states = [_ReaderState(cfg.seed, i) for i in range(cfg.readers)]
        arrivals: list[Arrival] = []
        cursor = [0]
        cursor_lock = threading.Lock()
        if cfg.arrival == "open":
            arrivals = self.open_schedule()
        start = time.perf_counter()
        if cfg.arrival == "open":
            threads = [
                threading.Thread(
                    target=self._open_reader_loop,
                    args=(i, arrivals, cursor, cursor_lock, start,
                          states[i]),
                    name=f"reader-{i}",
                    daemon=True,
                )
                for i in range(cfg.readers)
            ]
        else:
            threads = [
                threading.Thread(
                    target=self._reader_loop,
                    args=(i, stop, states[i]),
                    name=f"reader-{i}",
                    daemon=True,
                )
                for i in range(cfg.readers)
            ]
        writer_rng = random.Random(cfg.seed)
        deleted = 0
        ingested = 0
        differential_divergences: list[str] = []
        differential_checks = 0
        visibility = LatencyRecorder()
        visibility_misses = 0
        probing = (
            cfg.visibility_probes
            if cfg.visibility_probes is not None
            else cfg.read_tier == "immediate"
        )
        merger = None
        if cfg.background_merge:
            from .server import BackgroundMerger

            merger = BackgroundMerger(
                self.service, min_buffered=cfg.docs_per_batch
            ).start()
        for thread in threads:
            thread.start()
        try:
            for cycle in range(cfg.flush_cycles):
                # Time-to-visibility probe: one document carrying a
                # unique word, ingested at the top of the cycle and
                # timed until a query first returns it.  The immediate
                # tier answers right away; the snapshot tier cannot
                # answer before this cycle's publish — its floor is the
                # rest of the flush cycle (ingest + flush + publish).
                probe_seen = None
                if probing:
                    probe_word = "probe" + _word_name(cycle + 1)
                    probe_t0 = time.perf_counter()
                    probe_id = self.service.add_document(probe_word)
                    # The probe's writer-assigned id advances the global
                    # watermark; the skewed id scan must not fall below it.
                    self._skew_next = max(self._skew_next, probe_id + 1)
                    if self._mirror is not None:
                        self._mirror.add_document(probe_id, [probe_word])
                    if cfg.read_tier == "immediate":
                        got = self.service.search_streamed(probe_word)
                        if probe_id in got.doc_ids:
                            probe_seen = time.perf_counter() - probe_t0
                for _ in range(cfg.docs_per_batch):
                    text = self._document(writer_rng)
                    if cfg.doc_skew > 0.0:
                        doc_id = self._skewed_doc_id(writer_rng)
                        self.service.add_document(text, doc_id)
                        self._skew_live.append(doc_id)
                    else:
                        doc_id = self.service.add_document(text)
                    ingested += 1
                    if self._mirror is not None:
                        self._mirror.add_document(doc_id, text.split())
                    if cfg.doc_skew > 0.0:
                        # Skewed ids jump, so the trigger counts ingests
                        # and victims come from ids actually added (the
                        # scan's id gaps were never documents).
                        due = (
                            cfg.delete_every
                            and ingested % cfg.delete_every == 0
                            and len(self._skew_live) > 1
                        )
                        victim = (
                            self._skew_live.pop(
                                writer_rng.randrange(
                                    len(self._skew_live) - 1
                                )
                            )
                            if due
                            else None
                        )
                    else:
                        due = (
                            cfg.delete_every
                            and doc_id
                            and (doc_id + 1) % cfg.delete_every == 0
                        )
                        victim = writer_rng.randrange(doc_id) if due else None
                    if victim is not None:
                        self.service.delete_document(victim)
                        if self._mirror is not None:
                            self._mirror.delete_document(victim)
                        deleted += 1
                if cfg.differential and cfg.read_tier == "immediate":
                    # Mid-buffer: nothing flushed yet this cycle, but
                    # served answers must already include everything.
                    self._differential_check_mirror(
                        cycle, differential_divergences
                    )
                    differential_checks += 1
                if not cfg.background_merge:
                    crashing = self._maybe_crash_plan(cycle)
                    try:
                        self.service.flush_and_publish()
                    finally:
                        if crashing:
                            faults.uninstall()
                if cfg.differential and cfg.read_tier != "immediate":
                    if cfg.gateway:
                        self._differential_check_mirror(
                            cycle, differential_divergences
                        )
                    else:
                        self._differential_check(
                            cycle, differential_divergences
                        )
                    differential_checks += 1
                if probing and probe_seen is None:
                    got = self.service.search_streamed(probe_word)
                    if probe_id in got.doc_ids:
                        probe_seen = time.perf_counter() - probe_t0
                if probe_seen is not None:
                    visibility.record(probe_seen)
                elif probing:
                    # Legitimate under crash plans (the batch republishes
                    # on a later cycle); counted, not failed.
                    visibility_misses += 1
                if cfg.pace_s:
                    time.sleep(cfg.pace_s)
        finally:
            if merger is not None:
                merger.stop()
            stop.set()
            # Open-loop readers exit when the schedule drains (they must
            # serve every scheduled arrival, writer done or not).
            for thread in threads:
                thread.join(timeout=120.0)
        wall = time.perf_counter() - start

        overall = LatencyRecorder()
        per_kind = {
            kind: LatencyRecorder()
            for kind in ("boolean", "streamed", "vector")
        }
        divergences: list[str] = []
        for state in states:
            for kind, recorder in state.recorders.items():
                per_kind[kind].merge(recorder)
                overall.merge(recorder)
            divergences.extend(state.divergences)
        divergences.extend(differential_divergences)
        latency = {
            kind: recorder.summary() for kind, recorder in per_kind.items()
        }
        latency["overall"] = overall.summary()
        # Publish latency is its own series: writer-side, not part of the
        # query percentiles, but the batch-size scaling story
        # (BENCH_publish) is read off exactly this summary.
        latency["publish"] = self.service.publish_latency.summary()
        open_loop: dict = {}
        if cfg.arrival == "open":
            shed = sum(state.shed for state in states)
            deadline = sum(state.deadline_exceeded for state in states)
            open_loop = {
                "scheduled": len(arrivals),
                "completed": overall.count,
                "shed": shed,
                "deadline_exceeded": deadline,
                "offered_rate_qps": cfg.arrival_rate_qps,
                "schedule_seconds": round(arrivals[-1].at_s, 6)
                if arrivals
                else 0.0,
            }
        visibility_report = {
            "tier": cfg.read_tier,
            "misses": visibility_misses,
            **visibility.summary(),
        }
        memtier_report: dict = {}
        if cfg.read_tier == "immediate" and not cfg.gateway:
            memtier_report = self.service.memtier_stats()
            if merger is not None:
                memtier_report["merger"] = merger.stats()
        gateway_stats: dict = {}
        buffer_cache: dict = {}
        if cfg.gateway:
            gateway_stats = self.service.gateway_stats()
            for worker in self.service.buffer_stats():
                for key, value in worker.items():
                    if isinstance(value, (int, float)):
                        buffer_cache[key] = buffer_cache.get(key, 0) + value
        elif self.service.buffer_counters is not None:
            buffer_cache = self.service.buffer_counters.as_dict()
        return ServingReport(
            config={
                "readers": cfg.readers,
                "flush_cycles": cfg.flush_cycles,
                "docs_per_batch": cfg.docs_per_batch,
                "vocabulary": cfg.vocabulary,
                "seed": cfg.seed,
                "verify": cfg.verify,
                "delete_every": cfg.delete_every,
                "deleted": deleted,
                "crash_every": cfg.crash_every,
                "transient_rate": cfg.transient_rate,
                "publish_mode": cfg.publish_mode,
                "buffer_cache_blocks": cfg.buffer_cache_blocks,
                "differential": cfg.differential,
                "differential_checks": differential_checks,
                "shards": cfg.shards,
                "router_seed": cfg.router_seed,
                "flush_jobs": cfg.flush_jobs,
                "gateway": cfg.gateway,
                "arrival": cfg.arrival,
                "arrival_rate_qps": cfg.arrival_rate_qps,
                "arrival_queries": cfg.arrival_queries,
                "queue_limit": cfg.queue_limit,
                "shard_timeout_s": cfg.shard_timeout_s,
                "read_tier": cfg.read_tier,
                "background_merge": cfg.background_merge,
                "replicas": cfg.replicas,
                "rebuild_stagger": cfg.rebuild_stagger,
                "grow_buckets": cfg.grow_buckets,
                "doc_skew": cfg.doc_skew,
                "rebalance": cfg.rebalance,
                "rebalance_threshold": cfg.rebalance_threshold,
            },
            wall_seconds=wall,
            queries=overall.count,
            throughput_qps=overall.count / wall if wall > 0 else 0.0,
            latency=latency,
            cache=self.service.cache.stats().as_dict(),
            service=self.service.stats.as_dict(),
            stage_seconds=self.service.timings.as_dict(),
            divergences=len(divergences),
            divergence_examples=divergences,
            buffer_cache=buffer_cache,
            open_loop=open_loop,
            gateway=gateway_stats,
            visibility=visibility_report,
            memtier=memtier_report,
        )
