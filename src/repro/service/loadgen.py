"""Mixed read/update load generation against the query service.

The paper's workload is "daily batches of NetNews articles absorbed while
queries keep arriving"; :class:`LoadGenerator` reproduces that shape in
miniature: one writer ingests documents and publishes a snapshot per
flush cycle while N reader threads issue a seeded mix of boolean,
streamed, and vector queries against whatever snapshot is current.

Measurements ride the :mod:`repro.pipeline.profiling` plumbing — stage
spans (``serve.ingest`` / ``serve.flush`` / ``serve.publish``) accumulate
in the service's :class:`StageTimings`, and every query latency lands in a
per-thread :class:`LatencyRecorder`, merged into p50/p95/p99 afterwards —
and are archived as ``BENCH_serving.json`` by ``repro serve-bench``.

With ``verify=True`` every answer is checked against the brute-force
reference model frozen into the snapshot that served it; a mismatch is a
*stale-read divergence* (a reader observed writer state that was never a
published batch boundary) and fails the run's report.  With
``crash_every > 0`` the generator installs a crash plan before every Nth
flush, cycling through the registered flush/checkpoint crash points, so
publication is exercised across writer crashes and recoveries.
"""

from __future__ import annotations

import json
import random
import threading
import time
from dataclasses import dataclass, field

from ..core.index import IndexConfig
from ..pipeline.profiling import LatencyRecorder
from ..storage import faults
from ..storage.faults import FaultPlan
from .server import QueryService

#: Crash points cycled through by ``crash_every`` (update + publish paths).
CRASH_CYCLE = (
    "index.flush-begin",
    "index.before-word-append",
    "index.before-shadow-flush",
    "index.before-release",
    "index.before-clear",
    "checkpoint.mid-save",
    "checkpoint.cow-publish",
)


def _word_name(i: int) -> str:
    """Letters-only synthetic word: "wa", "wb", ... "wz", "waa", ...

    The tokenizer splits tokens at digit boundaries, so digit-suffixed
    names ("w1") would be indexed as "w" + "1" and every generated query
    would look up words that do not exist — answering over the empty set.
    """
    suffix = ""
    while i > 0:
        i, r = divmod(i - 1, 26)
        suffix = chr(ord("a") + r) + suffix
    return "w" + suffix


@dataclass(frozen=True)
class LoadConfig:
    """Shape of one serving-benchmark run (all randomness is seeded)."""

    readers: int = 4
    flush_cycles: int = 20
    docs_per_batch: int = 20
    vocabulary: int = 120
    words_per_doc: tuple[int, int] = (4, 12)
    seed: int = 0
    #: Fraction of queries per kind; normalized internally.
    mix: tuple[float, float, float] = (0.4, 0.4, 0.2)  # boolean/streamed/vector
    top_k: int = 10
    cache_capacity: int = 256
    verify: bool = True
    check_invariants: bool = True
    #: Every Nth ingested document triggers one random deletion (0 = never).
    delete_every: int = 0
    #: Install a crash plan before every Nth flush (0 = never).
    crash_every: int = 0
    #: Transient-I/O fault rate injected into the writer's disks.
    transient_rate: float = 0.0
    fault_seed: int = 0
    #: Seconds the writer sleeps between cycles so readers interleave.
    pace_s: float = 0.0
    #: How snapshots are published: "cow" (incremental copy-on-write)
    #: or "clone" (full checkpoint clone, the oracle).
    publish_mode: str = "cow"
    #: Block budget of the shared decoded-chunk cache (0 = disabled).
    buffer_cache_blocks: int = 128
    #: After every publish, compare the served snapshot against a fresh
    #: full-clone oracle over a probe query set (differential testing).
    differential: bool = False
    #: Probe queries per kind for each differential check.
    differential_probes: int = 4
    #: Document-hash shards (1 = the single-volume code path).
    shards: int = 1
    #: Router seed perturbing the doc-id hash (any value is valid).
    router_seed: int = 0
    #: Parallel per-shard flush workers (1 = serial).
    flush_jobs: int = 1
    flush_executor: str = "thread"

    def __post_init__(self) -> None:
        if self.readers <= 0 or self.flush_cycles <= 0:
            raise ValueError("readers and flush_cycles must be > 0")
        if self.docs_per_batch <= 0 or self.vocabulary <= 0:
            raise ValueError("docs_per_batch and vocabulary must be > 0")
        if len(self.mix) != 3 or sum(self.mix) <= 0 or min(self.mix) < 0:
            raise ValueError("mix must be three non-negative weights")
        if self.publish_mode not in ("clone", "cow"):
            raise ValueError("publish_mode must be 'clone' or 'cow'")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")

    @property
    def injects_faults(self) -> bool:
        return self.crash_every > 0 or self.transient_rate > 0.0

    def index_config(self) -> IndexConfig:
        """A small content-mode index; crash-safe when faults are on."""
        plan = (
            FaultPlan(
                seed=self.fault_seed, transient_rate=self.transient_rate
            )
            if self.transient_rate > 0.0
            else None
        )
        return IndexConfig(
            nbuckets=64,
            bucket_size=256,
            block_postings=16,
            ndisks=2,
            nblocks_override=500_000,
            store_contents=True,
            crash_safe=self.injects_faults,
            fault_plan=plan,
        )


@dataclass
class ServingReport:
    """Machine-readable outcome of one load-generation run."""

    config: dict
    wall_seconds: float
    queries: int
    throughput_qps: float
    latency: dict[str, dict]
    cache: dict
    service: dict
    stage_seconds: dict[str, float]
    divergences: int
    divergence_examples: list[str] = field(default_factory=list)
    buffer_cache: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "config": self.config,
            "wall_seconds": round(self.wall_seconds, 6),
            "queries": self.queries,
            "throughput_qps": round(self.throughput_qps, 3),
            "latency": self.latency,
            "cache": self.cache,
            "buffer_cache": self.buffer_cache,
            "service": self.service,
            "stage_seconds": self.stage_seconds,
            "divergences": self.divergences,
            "divergence_examples": self.divergence_examples[:5],
        }

    def write_json(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fp:
            json.dump(self.as_dict(), fp, indent=2, sort_keys=True)
            fp.write("\n")


class _ReaderState:
    """One reader thread's private state: its seeded RNG and recorders.

    The RNG lives here (not in the reader loop, not shared) so each
    thread's query stream is deterministic for a given ``(seed,
    reader_id)`` regardless of interleaving — shared ``random.Random``
    instances are lock-protected but produce schedule-dependent
    sequences.
    """

    def __init__(self, seed: int, reader_id: int) -> None:
        self.rng = random.Random(seed * 7919 + reader_id)
        self.recorders = {
            kind: LatencyRecorder()
            for kind in ("boolean", "streamed", "vector")
        }
        self.divergences: list[str] = []


class LoadGenerator:
    """Drive a mixed reader/writer workload and measure it."""

    def __init__(
        self,
        config: LoadConfig | None = None,
        service: QueryService | None = None,
    ) -> None:
        self.config = config or LoadConfig()
        self.service = service or QueryService(
            self.config.index_config(),
            cache_capacity=self.config.cache_capacity,
            check_invariants=self.config.check_invariants,
            track_reference=self.config.verify,
            publish_mode=self.config.publish_mode,
            buffer_cache_blocks=self.config.buffer_cache_blocks,
            shards=self.config.shards,
            router_seed=self.config.router_seed,
            flush_jobs=self.config.flush_jobs,
            flush_executor=self.config.flush_executor,
        )
        self._words = [
            _word_name(i) for i in range(1, self.config.vocabulary + 1)
        ]

    # -- deterministic generators -----------------------------------------

    def _skewed_word(self, rng: random.Random) -> str:
        """Zipf-ish draw: low word ids are hot, mirroring the corpus."""
        k = min(int(rng.paretovariate(0.8)), len(self._words))
        return self._words[k - 1]

    def _document(self, rng: random.Random) -> str:
        lo, hi = self.config.words_per_doc
        return " ".join(
            self._skewed_word(rng) for _ in range(rng.randint(lo, hi))
        )

    def _boolean_query(self, rng: random.Random) -> str:
        a, b, c = (self._skewed_word(rng) for _ in range(3))
        return rng.choice(
            [
                f"{a} AND {b}",
                f"{a} OR {b}",
                f"({a} AND {b}) OR {c}",
                f"{a} AND NOT {b}",
            ]
        )

    def _streamed_query(self, rng: random.Random) -> str:
        op = rng.choice(["AND", "OR"])
        words = [self._skewed_word(rng) for _ in range(rng.randint(2, 3))]
        return f" {op} ".join(words)

    def _vector_query(self, rng: random.Random) -> dict[str, float]:
        return {
            self._skewed_word(rng): float(rng.randint(1, 3))
            for _ in range(rng.randint(2, 5))
        }

    # -- reader threads ----------------------------------------------------

    def _verify(self, kind, query, got, snapshot, state) -> None:
        reference = snapshot.reference
        if reference is None:
            return
        if kind == "vector":
            want = reference.search_vector(query, top_k=self.config.top_k)
            ok = [(d.doc_id, d.score) for d in got] == [
                (d.doc_id, d.score) for d in want
            ]
        else:
            want = (
                reference.search_boolean(query)
                if kind == "boolean"
                else reference.search_streamed(query)
            )
            ok = got.doc_ids == want
        if not ok:
            state.divergences.append(
                f"snapshot {snapshot.snapshot_id} {kind} {query!r}: "
                f"served {got!r}, reference {want!r}"
            )

    def _reader_loop(
        self, reader_id: int, stop: threading.Event, state: _ReaderState
    ) -> None:
        try:
            self._reader_queries(reader_id, stop, state)
        except Exception as exc:  # noqa: BLE001 - must surface in the report
            # A dead reader thread must fail the run loudly, not shrink it.
            state.divergences.append(f"reader {reader_id} died: {exc!r}")

    def _reader_queries(
        self, reader_id: int, stop: threading.Event, state: _ReaderState
    ) -> None:
        rng = state.rng
        weights = self.config.mix
        kinds = ("boolean", "streamed", "vector")
        while not stop.is_set():
            kind = rng.choices(kinds, weights=weights)[0]
            # Pin the snapshot: the answer must be verified against the
            # exact reference model frozen with the state that served it.
            snapshot = self.service.snapshot()
            recorder = state.recorders[kind]
            if kind == "boolean":
                query = self._boolean_query(rng)
                with recorder.span():
                    got = self.service.search_boolean(query, snapshot)
            elif kind == "streamed":
                query = self._streamed_query(rng)
                with recorder.span():
                    got = self.service.search_streamed(query, snapshot)
            else:
                query = self._vector_query(rng)
                with recorder.span():
                    got = self.service.search_vector(
                        query, top_k=self.config.top_k, snapshot=snapshot
                    )
            if self.config.verify:
                self._verify(kind, query, got, snapshot, state)

    # -- the writer + the run ---------------------------------------------

    def _maybe_crash_plan(self, cycle: int) -> bool:
        """Install a crash plan for this cycle; True when one is active."""
        if not self.config.crash_every:
            return False
        if cycle == 0 or cycle % self.config.crash_every:
            return False
        point = CRASH_CYCLE[
            (cycle // self.config.crash_every - 1) % len(CRASH_CYCLE)
        ]
        faults.install(FaultPlan(crash_at=point, crash_at_hit=1))
        return True

    def _differential_check(
        self, cycle: int, divergences: list[str]
    ) -> None:
        """Compare the served snapshot against a fresh full-clone oracle.

        Runs on the writer thread right after a publish, while the writer
        sits at the batch boundary: the full checkpoint clone is the
        known-good publication path, so any answer difference on the
        probe set indicts the incremental (cow) snapshot.
        """
        snapshot = self.service.snapshot()
        oracle = self.service.writer_index.clone()
        rng = random.Random(self.config.seed * 104729 + cycle)
        for _ in range(self.config.differential_probes):
            query = self._boolean_query(rng)
            got = snapshot.search_boolean(query).doc_ids
            want = oracle.search_boolean(query).doc_ids
            if got != want:
                divergences.append(
                    f"cycle {cycle} differential boolean {query!r}: "
                    f"served {got!r}, oracle {want!r}"
                )
        for _ in range(self.config.differential_probes):
            query = self._streamed_query(rng)
            got = snapshot.search_streamed(query).doc_ids
            want = oracle.search_streamed(query).doc_ids
            if got != want:
                divergences.append(
                    f"cycle {cycle} differential streamed {query!r}: "
                    f"served {got!r}, oracle {want!r}"
                )
        for _ in range(self.config.differential_probes):
            weights = self._vector_query(rng)
            got = [
                (d.doc_id, d.score)
                for d in snapshot.search_vector(
                    weights, top_k=self.config.top_k
                )
            ]
            want = [
                (d.doc_id, d.score)
                for d in oracle.search_vector(
                    weights, top_k=self.config.top_k
                )
            ]
            if got != want:
                divergences.append(
                    f"cycle {cycle} differential vector {weights!r}: "
                    f"served {got!r}, oracle {want!r}"
                )

    def run(self) -> ServingReport:
        """Execute the workload; returns the measured report."""
        cfg = self.config
        stop = threading.Event()
        states = [_ReaderState(cfg.seed, i) for i in range(cfg.readers)]
        threads = [
            threading.Thread(
                target=self._reader_loop,
                args=(i, stop, states[i]),
                name=f"reader-{i}",
                daemon=True,
            )
            for i in range(cfg.readers)
        ]
        writer_rng = random.Random(cfg.seed)
        deleted = 0
        differential_divergences: list[str] = []
        differential_checks = 0
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        try:
            for cycle in range(cfg.flush_cycles):
                for _ in range(cfg.docs_per_batch):
                    doc_id = self.service.add_document(
                        self._document(writer_rng)
                    )
                    if (
                        cfg.delete_every
                        and doc_id
                        and (doc_id + 1) % cfg.delete_every == 0
                    ):
                        victim = writer_rng.randrange(doc_id)
                        self.service.delete_document(victim)
                        deleted += 1
                crashing = self._maybe_crash_plan(cycle)
                try:
                    self.service.flush_and_publish()
                finally:
                    if crashing:
                        faults.uninstall()
                if cfg.differential:
                    self._differential_check(cycle, differential_divergences)
                    differential_checks += 1
                if cfg.pace_s:
                    time.sleep(cfg.pace_s)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30.0)
        wall = time.perf_counter() - start

        overall = LatencyRecorder()
        per_kind = {
            kind: LatencyRecorder()
            for kind in ("boolean", "streamed", "vector")
        }
        divergences: list[str] = []
        for state in states:
            for kind, recorder in state.recorders.items():
                per_kind[kind].merge(recorder)
                overall.merge(recorder)
            divergences.extend(state.divergences)
        divergences.extend(differential_divergences)
        latency = {
            kind: recorder.summary() for kind, recorder in per_kind.items()
        }
        latency["overall"] = overall.summary()
        # Publish latency is its own series: writer-side, not part of the
        # query percentiles, but the batch-size scaling story
        # (BENCH_publish) is read off exactly this summary.
        latency["publish"] = self.service.publish_latency.summary()
        return ServingReport(
            config={
                "readers": cfg.readers,
                "flush_cycles": cfg.flush_cycles,
                "docs_per_batch": cfg.docs_per_batch,
                "vocabulary": cfg.vocabulary,
                "seed": cfg.seed,
                "verify": cfg.verify,
                "delete_every": cfg.delete_every,
                "deleted": deleted,
                "crash_every": cfg.crash_every,
                "transient_rate": cfg.transient_rate,
                "publish_mode": cfg.publish_mode,
                "buffer_cache_blocks": cfg.buffer_cache_blocks,
                "differential": cfg.differential,
                "differential_checks": differential_checks,
                "shards": cfg.shards,
                "router_seed": cfg.router_seed,
                "flush_jobs": cfg.flush_jobs,
            },
            wall_seconds=wall,
            queries=overall.count,
            throughput_qps=overall.count / wall if wall > 0 else 0.0,
            latency=latency,
            cache=self.service.cache.stats().as_dict(),
            service=self.service.stats.as_dict(),
            stage_seconds=self.service.timings.as_dict(),
            divergences=len(divergences),
            divergence_examples=divergences,
            buffer_cache=(
                self.service.buffer_counters.as_dict()
                if self.service.buffer_counters is not None
                else {}
            ),
        )
