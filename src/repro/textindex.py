"""Text-level retrieval facade: the library's friendliest entry point.

:class:`TextDocumentIndex` composes the text substrate (tokenizer +
vocabulary) with the dual-structure index and the two query models, so a
user can go from raw article text to ranked results in a few lines::

    from repro import TextDocumentIndex

    index = TextDocumentIndex()
    index.add_document("Date: ignored\\n\\nthe cat sat with the dog")
    index.add_document("a mouse ran past the dog")
    index.flush_batch()
    index.search_boolean("(cat AND dog) OR mouse")   # -> [0, 1]
    index.search_vector({"dog": 1.0, "mouse": 2.0})  # ranked

The index stores real postings on the simulated disks (content mode), so
every query pays — and reports — the read operations the paper's evaluation
charges for the configured policy.
"""

from __future__ import annotations

import io
import struct
from dataclasses import dataclass, replace

from .core import checkpoint
from .core.deletion import DeletionManager, SweepStats
from .core.index import BatchResult, DualStructureIndex, IndexConfig
from .core.positional import PositionalPostings, Region
from .query import boolean as boolean_query
from .query import positional as positional_query
from .query import streaming as streaming_query
from .query import vector as vector_query
from .query.vector import ScoredDocument
from .text.occurrences import RegionRules, tokenize_occurrences
from .text.tokenizer import TokenizerConfig, tokenize_document
from .text.vocabulary import Vocabulary, VocabularyView


@dataclass
class QueryAnswer:
    """Boolean query result plus its I/O cost."""

    doc_ids: list[int]
    read_ops: int


class TextDocumentIndex:
    """An incrementally updatable full-text index over text documents."""

    def __init__(
        self,
        config: IndexConfig | None = None,
        tokenizer_config: TokenizerConfig | None = None,
        region_rules: RegionRules | None = None,
    ) -> None:
        base = config or IndexConfig()
        if not base.store_contents:
            base = replace(base, store_contents=True)
        self.index = DualStructureIndex(base)
        self.vocabulary = Vocabulary()
        self.tokenizer_config = tokenizer_config
        self.region_rules = region_rules
        self.deletions = DeletionManager(self.index)
        self._last_read_ops = 0

    # -- ingest ---------------------------------------------------------------

    def add_document(self, text: str, doc_id: int | None = None) -> int:
        """Tokenize and index one document; returns its doc id.

        On a positional index (``IndexConfig(positional=True)``) every
        posting also records the word's offsets and region flags.
        ``doc_id`` pins an explicit (non-decreasing) identifier — used by
        the sharded router, which assigns global ids and hands each shard
        an increasing subsequence of them.
        """
        if self.index.config.positional:
            occurrences = [
                (self.vocabulary.id_of(o.word), o.position, o.region)
                for o in tokenize_occurrences(
                    text, self.tokenizer_config, self.region_rules
                )
            ]
            return self.index.add_document_occurrences(
                occurrences, doc_id=doc_id
            )
        words = tokenize_document(text, self.tokenizer_config)
        word_ids = [self.vocabulary.id_of(w) for w in words]
        return self.index.add_document(word_ids, doc_id=doc_id)

    def flush_batch(self) -> BatchResult:
        """Flush the in-memory batch to disk (one incremental update)."""
        return self.index.flush_batch()

    @property
    def ndocs(self) -> int:
        return self.index.ndocs

    @property
    def batches(self) -> int:
        """Completed batch flushes (protocol surface for the service)."""
        return self.index.batches

    @property
    def shard_versions(self) -> tuple[int, ...]:
        """The shard-snapshot vector of a single volume: one component."""
        return (self.index.batches,)

    @property
    def crash_safe(self) -> bool:
        return self.index.config.crash_safe

    @property
    def delta(self):
        """The writer's delta journal (``None`` in evaluation mode)."""
        return self.index.delta

    def recover(self, replay: bool = True) -> BatchResult | None:
        """Roll back an aborted flush and optionally replay it (requires
        ``IndexConfig(crash_safe=True)``)."""
        return self.index.recover(replay=replay)

    @property
    def needs_recovery(self) -> bool:
        """True while an aborted crash-safe flush awaits :meth:`recover`."""
        return self.index._aborted_batch is not None

    def dirty_terms(self) -> frozenset:
        """Lowercased terms the current batch's delta journal touched."""
        if self.index.delta is None:
            return frozenset()
        return frozenset(
            self.vocabulary.word_of(word_id).lower()
            for word_id in self.index.delta.dirty_words
        )

    def freeze(self) -> None:
        """Debug write barrier over the core index (publish-time)."""
        from .core.invariants import freeze_index

        freeze_index(self.index)

    def check(self):
        """Run the dual-structure invariant checker over the core index."""
        from .core.invariants import check_index

        return check_index(self.index)

    def attach_buffer_cache(
        self, blocks: int, counters, prev=None, delta=None
    ) -> None:
        """Wire a decoded-chunk buffer cache into this (published) index.

        With ``prev`` (the previously published index) and ``delta`` (the
        batch's journal) the cache is carried forward minus the delta's
        dirty blocks; otherwise a fresh cache is attached.
        """
        from .storage.buffercache import BlockBufferCache

        prev_cache = (
            prev.index.longlists.buffer_cache if prev is not None else None
        )
        if prev_cache is not None and delta is not None:
            cache = prev_cache.successor(delta.dirty_blocks)
        else:
            cache = BlockBufferCache(blocks, counters)
        self.index.longlists.buffer_cache = cache

    # -- deletion -----------------------------------------------------------------

    def delete_document(self, doc_id: int) -> None:
        """Delete a document from the user's point of view (paper §3):
        it disappears from answers immediately; its postings are reclaimed
        by the background sweep."""
        self.deletions.delete(doc_id)

    def sweep_deletions(self, max_lists: int | None = None) -> SweepStats:
        """Run the background reclamation sweep — incrementally when
        ``max_lists`` is given, else to completion."""
        if max_lists is None:
            return self.deletions.sweep_all()
        if not self.deletions.sweeping:
            self.deletions.begin_sweep()
        return self.deletions.sweep_step(max_lists=max_lists)

    # -- retrieval ----------------------------------------------------------------

    def fetch_postings(self, word: str) -> tuple[list[int], int]:
        """One word's live (deletion-filtered) doc ids plus the read ops
        charged — the per-call fetch primitive scatter-gather merges
        across shards.  No shared accounting: safe from any thread."""
        word_id = self.vocabulary.lookup(word)
        if word_id is None:
            return [], 0
        postings, read_ops = self.index.fetch(word_id)
        return self.deletions.filter(postings.doc_ids), read_ops

    def _fetch(self, word: str) -> list[int]:
        docs, read_ops = self.fetch_postings(word)
        self._last_read_ops += read_ops
        return docs

    def _counted_fetch(self, counter: list[int]):
        """A fetcher whose read-op total lives in ``counter`` — query
        accounting stays local to the call so published clones can serve
        many reader threads at once."""

        def fetch(word: str) -> list[int]:
            docs, read_ops = self.fetch_postings(word)
            counter[0] += read_ops
            return docs

        return fetch

    def search_boolean(self, query: str) -> QueryAnswer:
        """Evaluate a boolean query (AND/OR/NOT, parentheses)."""
        counter = [0]
        docs = boolean_query.evaluate(
            query, self._counted_fetch(counter), self.index.ndocs
        )
        # NOT complements against the full doc-id universe, which still
        # contains deleted ids; the answer filter removes them (§3).
        docs = self.deletions.filter(docs)
        self._last_read_ops = counter[0]
        return QueryAnswer(doc_ids=docs, read_ops=counter[0])

    def search_streamed(self, query: str) -> QueryAnswer:
        """Evaluate a flat conjunction or disjunction lazily.

        Supports queries of the shape ``a AND b AND c`` or ``a OR b OR c``
        (one operator, no parentheses or NOT): the streaming evaluator
        decodes posting blocks on demand and a conjunction stops reading
        as soon as any operand is exhausted.  ``read_ops`` counts only the
        chunks actually touched — for skewed conjunctions this is far
        below :meth:`search_boolean`'s cost.
        """
        words, operators = streaming_query.parse_flat(query)
        word_ids = [
            word_id
            for word_id in (self.vocabulary.lookup(w) for w in words)
            if word_id is not None
        ]
        missing = len(words) - len(word_ids)
        if operators == {"OR"} or len(words) == 1:
            docs, stats = streaming_query.streamed_or(self.index, word_ids)
        elif missing:
            # An unknown conjunct empties the conjunction without I/O.
            docs, stats = [], streaming_query.StreamStats()
        else:
            docs, stats = streaming_query.streamed_and(self.index, word_ids)
        docs = self.deletions.filter(docs)
        # Keep the facade-level counter in step with the per-answer cost so
        # last_read_ops means the same thing (Figure 10 read units: one per
        # chunk opened, one per bucket) after any search_* method.
        self._last_read_ops = stats.read_ops
        return QueryAnswer(doc_ids=docs, read_ops=stats.read_ops)

    def search_vector(
        self, weights: dict[str, float], top_k: int = 10
    ) -> list[ScoredDocument]:
        """Rank documents for a weighted vector query."""
        ranked, read_ops = self.search_vector_counted(weights, top_k=top_k)
        return ranked

    def search_vector_counted(
        self, weights: dict[str, float], top_k: int = 10
    ) -> tuple[list[ScoredDocument], int]:
        """:meth:`search_vector` plus the read ops it charged."""
        counter = [0]
        ranked = vector_query.rank(
            weights,
            self._counted_fetch(counter),
            self.index.ndocs,
            top_k=top_k,
        )
        self._last_read_ops = counter[0]
        return ranked, counter[0]

    # -- positional conditions (paper §1) ------------------------------------------

    def _fetch_positional(self, word: str) -> PositionalPostings:
        if not self.index.config.positional:
            raise RuntimeError(
                "positional queries need IndexConfig(positional=True)"
            )
        word_id = self.vocabulary.lookup(word.lower())
        if word_id is None:
            return PositionalPostings()
        postings, read_ops = self.index.fetch(word_id)
        self._last_read_ops += read_ops
        return postings

    def search_phrase(self, phrase: str) -> QueryAnswer:
        """Documents containing the words of ``phrase`` consecutively."""
        self._last_read_ops = 0
        words = tokenize_document(phrase, self.tokenizer_config)
        payloads = [self._fetch_positional(w) for w in words]
        docs = self.deletions.filter(positional_query.phrase_docs(payloads))
        return QueryAnswer(doc_ids=docs, read_ops=self._last_read_ops)

    def search_near(self, word_a: str, word_b: str, k: int) -> QueryAnswer:
        """Documents where the two words occur within ``k`` words of each
        other (the paper's proximity condition)."""
        self._last_read_ops = 0
        docs = positional_query.proximity_docs(
            self._fetch_positional(word_a),
            self._fetch_positional(word_b),
            k,
        )
        docs = self.deletions.filter(docs)
        return QueryAnswer(doc_ids=docs, read_ops=self._last_read_ops)

    def search_region(self, word: str, region: Region) -> QueryAnswer:
        """Documents where ``word`` occurs inside ``region`` (the paper's
        "within a title region" condition)."""
        self._last_read_ops = 0
        docs = positional_query.region_docs(
            self._fetch_positional(word), region
        )
        docs = self.deletions.filter(docs)
        return QueryAnswer(doc_ids=docs, read_ops=self._last_read_ops)

    def more_like(self, text: str, top_k: int = 10) -> list[ScoredDocument]:
        """Vector query derived from a document, the paper's vector-IRM
        workload shape."""
        words = tokenize_document(text, self.tokenizer_config)
        return self.search_vector(
            vector_query.query_from_document(words), top_k=top_k
        )

    @property
    def last_read_ops(self) -> int:
        """Read operations charged by the most recent search."""
        return self._last_read_ops

    def export_documents(self) -> list[tuple[int, str]]:
        """Reconstruct every live document as ``(doc_id, text)``, sorted.

        The rebalancer's relocation primitive: a shard merge rebuilds a
        union volume by re-adding the source volumes' documents in
        ascending doc-id order, and this is where the documents come
        from.  The index stores postings, not document text, so each
        document is *reconstructed* from the inverted lists — a
        vocabulary scan collecting, for each live document, the words
        whose (deletion-filtered) posting lists contain it.  That loses
        word order and multiplicity, but the index never kept either
        (one posting per distinct word, paper §4.2), and re-tokenizing
        the space-joined word set yields the identical posting set:
        vocabulary words are maximal lowercase letter/digit runs, so
        they round-trip through the tokenizer unchanged and cannot form
        an ignored ``Date:``-style header line.

        Requires a flushed index (pending in-memory batches are not
        visible to :meth:`fetch_postings`) and a non-positional
        configuration (offsets and regions are not reconstructible from
        a word set).
        """
        if self.index.config.positional:
            raise RuntimeError(
                "export_documents requires a non-positional index: "
                "word order cannot be reconstructed from postings"
            )
        docs: dict[int, list[str]] = {}
        for word in self.vocabulary.words():
            doc_ids, _ = self.fetch_postings(word)
            for doc_id in doc_ids:
                docs.setdefault(doc_id, []).append(word)
        return [
            (doc_id, " ".join(sorted(words)))
            for doc_id, words in sorted(docs.items())
        ]

    # -- introspection -----------------------------------------------------------

    def document_frequency(self, word: str) -> int:
        """Number of documents containing ``word``."""
        word_id = self.vocabulary.lookup(word)
        if word_id is None:
            return 0
        if self.deletions.ndeleted:
            postings, _ = self.index.fetch(word_id)
            return len(self.deletions.filter(postings.doc_ids))
        return self.index.posting_count(word_id)

    def stats(self):
        """Underlying index statistics."""
        return self.index.stats()

    # -- persistence ----------------------------------------------------------------

    def clone(self) -> "TextDocumentIndex":
        """An independent deep copy at the current batch boundary.

        Copy-on-publish for the serving layer
        (:mod:`repro.service`): the clone is rebuilt from the serialized
        checkpoint form — core index, vocabulary, deletion set — so it
        shares no mutable structure with this index and can be read from
        other threads while this one keeps ingesting.  Like :meth:`save`,
        requires an empty in-memory batch (flush first).
        """
        buf = io.BytesIO()
        self.save(buf)
        buf.seek(0)
        copy = TextDocumentIndex.load(buf)
        copy.tokenizer_config = self.tokenizer_config
        copy.region_rules = self.region_rules
        return copy

    def clone_incremental(
        self, prev: "TextDocumentIndex", delta
    ) -> "TextDocumentIndex":
        """A published snapshot that structurally shares ``prev``.

        The incremental counterpart of :meth:`clone`: instead of
        serializing the whole index, only state touched since ``prev``
        was published (recorded in ``delta``, the writer's
        :class:`~repro.core.delta.DeltaJournal`) is copied.  Everything
        else — bucket images, long-list chunks, directory entries, the
        vocabulary, the deletion set — is shared with ``prev``, so the
        publish cost is O(batch) rather than O(index).  Raises
        :class:`~repro.core.checkpoint.CheckpointError` when the delta
        cannot prove it covers the gap (e.g. after crash recovery or a
        structural rebuild); callers fall back to :meth:`clone`.
        """
        core = checkpoint.clone_incremental(self.index, prev.index, delta)
        copy = TextDocumentIndex.__new__(TextDocumentIndex)
        copy.index = core
        copy.vocabulary = VocabularyView(self.vocabulary)
        copy.tokenizer_config = self.tokenizer_config
        copy.region_rules = self.region_rules
        copy.deletions = DeletionManager(core)
        if delta.deletions_changed:
            copy.deletions.deleted = set(self.deletions.deleted)
        else:
            # Unchanged since the previous publish: share its (now
            # immutable) set outright.
            copy.deletions.deleted = prev.deletions.deleted
        copy._last_read_ops = 0
        return copy

    _MAGIC = b"DSTX"

    def save(self, target) -> None:
        """Persist the whole text index to one file: the core checkpoint,
        the vocabulary, and the deletion filter set.

        Like core checkpoints, saving happens at batch boundaries (flush
        first).  ``target`` is a path or binary file object.
        """
        if hasattr(target, "write"):
            self._save(target)
        else:
            with open(target, "wb") as fp:
                self._save(fp)

    def _save(self, fp) -> None:
        fp.write(self._MAGIC)
        core = io.BytesIO()
        checkpoint.save(self.index, core)
        blob = core.getvalue()
        fp.write(struct.pack("<Q", len(blob)))
        fp.write(blob)
        words = list(self.vocabulary.words())
        fp.write(struct.pack("<Q", len(words)))
        for word in words:
            data = word.encode("utf-8")
            fp.write(struct.pack("<I", len(data)))
            fp.write(data)
        deleted = sorted(self.deletions.deleted)
        fp.write(struct.pack("<Q", len(deleted)))
        for doc_id in deleted:
            fp.write(struct.pack("<Q", doc_id))

    @classmethod
    def load(cls, source) -> "TextDocumentIndex":
        """Restore a text index saved by :meth:`save`."""
        if hasattr(source, "read"):
            return cls._load(source)
        with open(source, "rb") as fp:
            return cls._load(fp)

    @classmethod
    def _load(cls, fp) -> "TextDocumentIndex":
        if fp.read(4) != cls._MAGIC:
            raise ValueError("not a text-index snapshot")
        (core_len,) = struct.unpack("<Q", fp.read(8))
        core = checkpoint.load(io.BytesIO(fp.read(core_len)))
        index = cls.__new__(cls)
        index.index = core
        index.vocabulary = Vocabulary()
        (nwords,) = struct.unpack("<Q", fp.read(8))
        for _ in range(nwords):
            (wlen,) = struct.unpack("<I", fp.read(4))
            index.vocabulary.id_of(fp.read(wlen).decode("utf-8"))
        index.tokenizer_config = None
        index.region_rules = None
        index.deletions = DeletionManager(core)
        (ndeleted,) = struct.unpack("<Q", fp.read(8))
        for _ in range(ndeleted):
            (doc_id,) = struct.unpack("<Q", fp.read(8))
            index.deletions.deleted.add(doc_id)
        index._last_read_ops = 0
        return index
