"""Streaming query evaluation: merge posting lists block by block.

The paper's query processing merges sorted inverted lists (§3: "the merge
operation can be used to compute answers to boolean queries").  The basic
evaluators in :mod:`repro.query.boolean` materialize whole lists first;
this module evaluates the same merges *lazily*, decoding one disk block at
a time, so a conjunction stops reading as soon as any operand is
exhausted.  For the skewed lists the dual structure manages — "cat AND
rare-word" touching a frequent word's enormous list — early exit saves
most of the frequent list's blocks.

Accounting matches the rest of the system: a cursor charges one *read
operation* per chunk it opens (the Figure 10 unit — chunks are contiguous,
so the seek happens once) and separately counts the *blocks* it actually
decodes, which is where streaming wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from ..core.index import DualStructureIndex
from ..storage.block import blocks_for_postings


def parse_flat(query: str) -> tuple[list[str], set[str]]:
    """Parse a flat ``a AND b AND c`` / ``a OR b OR c`` query.

    Returns the lowercased words and the (single-element) operator set;
    raises :class:`ValueError` on anything that needs the full boolean
    evaluator.  Shared by the facade and the scatter-gather layer so both
    reject exactly the same inputs.
    """
    tokens = query.split()
    words = [t.lower() for t in tokens[::2]]
    operators = {t.upper() for t in tokens[1::2]}
    if len(tokens) % 2 == 0 or operators - {"AND", "OR"} or (
        len(operators) > 1
    ):
        raise ValueError(
            "search_streamed takes flat 'a AND b AND c' or "
            "'a OR b OR c' queries; use search_boolean for general "
            "expressions"
        )
    return words, operators


@dataclass
class StreamStats:
    """I/O actually performed by a streamed evaluation."""

    read_ops: int = 0
    blocks_read: int = 0
    postings_decoded: int = 0


class ListCursor:
    """A lazy cursor over one word's postings on the simulated disks.

    Blocks are decoded on first touch; ``next_geq`` advances to the first
    document id ≥ its argument (sequential block scan — chunk metadata
    does not record doc-id ranges, so blocks cannot be skipped, only left
    unread when evaluation stops early).
    """

    def __init__(
        self, index: DualStructureIndex, word: int, stats: StreamStats
    ) -> None:
        if not index.config.store_contents:
            raise RuntimeError("streaming requires content mode")
        self.index = index
        self.stats = stats
        self.block_postings = index.config.block_postings
        entry = index.directory.get(word)
        # (disk, block address, starts-a-chunk): chunk read ops are only
        # charged when evaluation actually touches the chunk.
        self._blocks: list[tuple[int, int, bool]] = []
        if entry is not None:
            for chunk in entry.chunks:
                data_blocks = blocks_for_postings(
                    chunk.npostings, self.block_postings
                )
                for b in range(data_blocks):
                    self._blocks.append(
                        (chunk.disk, chunk.start + b, b == 0)
                    )
        else:
            short = index.buckets.get(word)
            if short is not None:
                self._bucket_docs = list(short.doc_ids)
            else:
                self._bucket_docs = []
        self._entry = entry
        # The unflushed in-memory batch is searchable alongside the larger
        # index (paper §1); it is served after the on-disk blocks, free of
        # I/O charges.
        pending = index.memory.get(word)
        self._pending = list(pending.doc_ids) if pending is not None else []
        self._pending_served = False
        self._buffer: list[int] = []
        self._buffer_pos = 0
        self._next_block = 0
        self._exhausted = False
        self.current: int | None = None
        self._advance()

    # -- block refill -------------------------------------------------------

    def _refill(self) -> bool:
        if self._refill_disk():
            return True
        if self._pending and not self._pending_served:
            self._pending_served = True
            self._buffer = self._pending
            self._buffer_pos = 0
            self.stats.postings_decoded += len(self._buffer)
            return True
        return False

    def _refill_disk(self) -> bool:
        if self._entry is None:
            if self._next_block == 0 and self._bucket_docs:
                self._buffer = self._bucket_docs
                self._buffer_pos = 0
                self._next_block = 1
                self.stats.read_ops += 1  # the bucket read
                self.stats.postings_decoded += len(self._buffer)
                return True
            return False
        if self._next_block >= len(self._blocks):
            return False
        disk_id, address, chunk_start = self._blocks[self._next_block]
        self._next_block += 1
        if chunk_start:
            self.stats.read_ops += 1  # positioned read opening the chunk
        raw = self.index.array.disks[disk_id].read_blocks(address, 1)[0]
        decoded = self.index.longlists.content_cls.decode(raw)
        self._buffer = decoded.doc_ids
        self._buffer_pos = 0
        self.stats.blocks_read += 1
        self.stats.postings_decoded += len(self._buffer)
        return bool(self._buffer)

    def _advance(self) -> None:
        while self._buffer_pos >= len(self._buffer):
            if not self._refill():
                self._exhausted = True
                self.current = None
                return
        self.current = self._buffer[self._buffer_pos]
        self._buffer_pos += 1

    # -- cursor API ----------------------------------------------------------

    @property
    def exhausted(self) -> bool:
        return self._exhausted

    def next(self) -> None:
        """Advance one posting."""
        if not self._exhausted:
            self._advance()

    def next_geq(self, doc_id: int) -> None:
        """Advance until ``current >= doc_id`` (or exhaustion)."""
        while not self._exhausted and self.current < doc_id:
            self._advance()


def stream_intersect(cursors: Sequence[ListCursor]) -> Iterator[int]:
    """Yield documents present in every cursor, reading lazily.

    Standard leapfrog: repeatedly align all cursors on the maximum of
    their currents; stops — leaving blocks unread — when any cursor
    exhausts.
    """
    if not cursors or any(c.exhausted for c in cursors):
        return
    while True:
        target = max(c.current for c in cursors)
        for cursor in cursors:
            cursor.next_geq(target)
            if cursor.exhausted:
                return
        if all(c.current == target for c in cursors):
            yield target
            for cursor in cursors:
                cursor.next()
                if cursor.exhausted:
                    return


def stream_union(cursors: Sequence[ListCursor]) -> Iterator[int]:
    """Yield documents present in any cursor, in ascending order."""
    live = [c for c in cursors if not c.exhausted]
    while live:
        doc = min(c.current for c in live)
        yield doc
        for cursor in live:
            if cursor.current == doc:
                cursor.next()
        live = [c for c in live if not c.exhausted]


def streamed_and(
    index: DualStructureIndex, words: Sequence[int]
) -> tuple[list[int], StreamStats]:
    """Evaluate a conjunction lazily; returns (answer, I/O stats)."""
    stats = StreamStats()
    cursors = [ListCursor(index, word, stats) for word in words]
    return list(stream_intersect(cursors)), stats


def streamed_or(
    index: DualStructureIndex, words: Sequence[int]
) -> tuple[list[int], StreamStats]:
    """Evaluate a disjunction lazily; returns (answer, I/O stats)."""
    stats = StreamStats()
    cursors = [ListCursor(index, word, stats) for word in words]
    return list(stream_union(cursors)), stats
