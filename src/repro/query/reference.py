"""Brute-force reference model: the gold standard every evaluator must match.

The paper argues correctness structurally — sorted lists, append-only
updates, merge-based evaluation (§3) — but the repo verifies it
differentially: a :class:`BruteForceIndex` stores documents as plain word
sets and answers every query by scanning them, so any divergence between
the real evaluators (:mod:`repro.query.boolean`,
:mod:`repro.query.streaming`, :mod:`repro.query.vector`) and this model is
a bug in the index or its query machinery, never in the oracle.

Three consumers share it:

* the hypothesis differential test (``tests/query``) drives random
  corpora and queries through index and model side by side;
* the serving layer's stress test attaches a frozen model to every
  published snapshot, so reader threads can detect stale or torn reads;
* the serving-vs-offline equivalence test rebuilds the model from the
  load generator's document stream.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from . import boolean as boolean_query
from . import vector as vector_query
from .vector import ScoredDocument


class BruteForceIndex:
    """A naive inverted index over word *strings*: dict of sorted lists.

    Mirrors the user-visible contract of
    :class:`repro.textindex.TextDocumentIndex` — same query surface, same
    deletion semantics (deleted documents disappear from answers
    immediately) — with none of the machinery under test.
    """

    def __init__(self) -> None:
        self._lists: dict[str, list[int]] = {}
        self._deleted: set[int] = set()
        self.ndocs = 0

    # -- ingest ----------------------------------------------------------

    def add_document(self, doc_id: int, words: Iterable[str]) -> None:
        """Record one document; ids must arrive in increasing order."""
        for word in sorted(set(words)):
            postings = self._lists.setdefault(word, [])
            if postings and postings[-1] >= doc_id:
                raise ValueError("doc ids must be increasing")
            postings.append(doc_id)
        self.ndocs = max(self.ndocs, doc_id + 1)

    def delete_document(self, doc_id: int) -> None:
        self._deleted.add(doc_id)

    # -- retrieval -------------------------------------------------------

    def fetch(self, word: str) -> list[int]:
        """A word's live posting list (deleted docs filtered)."""
        postings = self._lists.get(word, [])
        if not self._deleted:
            return list(postings)
        return [d for d in postings if d not in self._deleted]

    def search_boolean(self, query: str) -> list[int]:
        """Evaluate a boolean query exactly like the facade does."""
        docs = boolean_query.evaluate(query, self.fetch, self.ndocs)
        return [d for d in docs if d not in self._deleted]

    def search_streamed(self, query: str) -> list[int]:
        """Flat AND/OR queries: streaming and materialized semantics agree
        on answers, so the model needs only one evaluator."""
        return self.search_boolean(query)

    def search_vector(
        self, weights: Mapping[str, float], top_k: int = 10
    ) -> list[ScoredDocument]:
        return vector_query.rank(weights, self.fetch, self.ndocs, top_k=top_k)

    # -- snapshotting ----------------------------------------------------

    def freeze(self) -> "BruteForceIndex":
        """An independent copy pinned to the current contents — what the
        serving layer attaches to a published snapshot."""
        frozen = BruteForceIndex()
        frozen._lists = {w: list(p) for w, p in self._lists.items()}
        frozen._deleted = set(self._deleted)
        frozen.ndocs = self.ndocs
        return frozen

    def words(self) -> list[str]:
        """All indexed words, sorted (query-generation support)."""
        return sorted(self._lists)


def materialized_blocks(index, words: Sequence[str]) -> int:
    """Disk blocks the *materialized* evaluator would decode for ``words``.

    The upper bound the streamed evaluator's ``blocks_read`` must respect:
    fetching a word's whole long list touches every data block of every
    chunk (bucket short lists live in bucket pages, charged as read ops,
    not data blocks).  ``index`` is a :class:`~repro.textindex.TextDocumentIndex`.
    """
    from ..storage.block import blocks_for_postings

    block_postings = index.index.config.block_postings
    total = 0
    for word in words:
        word_id = index.vocabulary.lookup(word)
        if word_id is None:
            continue
        entry = index.index.directory.get(word_id)
        if entry is None:
            continue
        total += sum(
            blocks_for_postings(chunk.npostings, block_postings)
            for chunk in entry.chunks
        )
    return total
