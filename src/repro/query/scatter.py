"""Scatter-gather query execution over document-partitioned shards.

A document-hash-sharded index (:mod:`repro.core.sharded`) partitions the
doc-id universe across N independent dual-structure volumes.  Because the
partition is by *document*, every term's posting list is split across
shards, and because each shard only ever indexes an increasing
subsequence of the global doc ids, each fragment is sorted by global doc
id and the fragments are pairwise disjoint.  That makes gathering exact
and cheap:

* **fetch-level scatter** (:func:`scatter_fetch`): fan one term's fetch
  to every shard and merge the sorted, disjoint fragments into the very
  posting list a single volume would have produced.  Boolean and vector
  evaluation then run *unchanged* on top of the merged fetch — which is
  what makes sharded answers byte-identical to the single-volume oracle
  (including ``NOT``'s complement over the global universe and idf over
  the global ``ndocs``).
* **answer-level scatter** (:func:`gather_answers`): flat streamed
  AND/OR queries are evaluated lazily *inside* each shard (keeping the
  early-exit economy local) and only the per-shard answers — again
  sorted and disjoint — are merged.

Read-op accounting is summed across shards: each shard charges the
paper's Figure-10 units (one read per chunk, one per bucket) against its
own volume, so the cost model stays meaningful per shard and the total
is the scatter cost of the query.
"""

from __future__ import annotations

import heapq
from typing import Callable, Sequence

#: A per-shard fetch primitive: ``word -> (sorted doc ids, read_ops)``.
ShardFetch = Callable[[str], tuple[list[int], int]]


def merge_disjoint(runs: Sequence[list[int]]) -> list[int]:
    """Merge sorted, pairwise-disjoint doc-id runs into one sorted list.

    The shape scatter-gather always produces: each shard owns a disjoint
    slice of the universe and returns its docs in ascending order.
    """
    live = [run for run in runs if run]
    if not live:
        return []
    if len(live) == 1:
        return list(live[0])
    return list(heapq.merge(*live))


def merge_unique(runs: Sequence[list[int]]) -> list[int]:
    """Merge sorted doc-id runs, dropping cross-run duplicates.

    On pairwise-disjoint runs this is exactly :func:`merge_disjoint` —
    the steady-state scatter shape — so using it costs nothing in the
    common case.  During a split's relocation window two shards briefly
    both hold a moving document (the new shard was spawned from the
    victim's checkpoint before the victim's tombstones flush); deduping
    here makes that overlap invisible to boolean evaluation and vector
    scoring, which is what keeps mid-rebalance answers byte-identical to
    the unsharded oracle.
    """
    live = [run for run in runs if run]
    if not live:
        return []
    if len(live) == 1:
        return list(live[0])
    merged: list[int] = []
    for doc in heapq.merge(*live):
        if not merged or merged[-1] != doc:
            merged.append(doc)
    return merged


def scatter_fetch(fetchers: Sequence[ShardFetch]):
    """A merged fetch over per-shard fetchers, with summed accounting.

    Returns ``(fetch, counter)``: ``fetch(word)`` fans the lookup to
    every shard and merges the fragments; ``counter[0]`` accumulates the
    read ops all shards charged.  The counter lives in the closure, not
    on any shared object, so the merged fetch is safe to use from
    concurrent reader threads.
    """
    counter = [0]

    def fetch(word: str) -> list[int]:
        runs = []
        for shard_fetch in fetchers:
            docs, read_ops = shard_fetch(word)
            counter[0] += read_ops
            if docs:
                runs.append(docs)
        return merge_disjoint(runs)

    return fetch, counter


def gather_answers(
    answers: Sequence[tuple[list[int], int]]
) -> tuple[list[int], int]:
    """Merge per-shard ``(doc_ids, read_ops)`` answers.

    For queries whose per-shard evaluation is globally correct (flat
    AND/OR conjunctions and disjunctions — a document satisfies them
    based on its own contents alone), the global answer is just the
    merge of the disjoint per-shard answers and the summed cost.
    """
    docs = merge_disjoint([a[0] for a in answers])
    read_ops = sum(a[1] for a in answers)
    return docs, read_ops
