"""Vector-space information-retrieval model (paper §1, §5.2.1).

"In a vector model system, the query specifies weights for the words, and
the system must locate documents that maximize the weighted sum of
occurring words.  Vector model systems typically use inverted lists to prune
the set of candidate documents before the vector condition is evaluated."

Our postings are presence-only (one posting per word-document pair, as in
an abstracts index), so a document's score is the sum over query words it
contains of ``weight(word) × idf(word)``.  The characteristic the paper's
evaluation leans on is workload shape, not scoring subtleties: vector
queries are *long* (often derived from a whole document) and dominated by
*frequent* words — exactly the words that have long lists — which is why
Figure 10's "average reads per long list" is the vector-IRM cost proxy.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence


@dataclass(frozen=True)
class ScoredDocument:
    """One ranked result."""

    doc_id: int
    score: float


def idf(ndocs: int, doc_frequency: int) -> float:
    """Inverse document frequency, smoothed to stay positive.

    ``log(1 + N / df)``; 0.0 for words that appear nowhere.
    """
    if doc_frequency <= 0 or ndocs <= 0:
        return 0.0
    return math.log(1.0 + ndocs / doc_frequency)


def rank(
    weights: Mapping[str, float],
    fetch: Callable[[str], Sequence[int]],
    ndocs: int,
    top_k: int = 10,
) -> list[ScoredDocument]:
    """Rank documents for a weighted word query.

    ``fetch`` returns a word's sorted posting list (empty when unknown).
    Scores accumulate per document across the query's posting lists — the
    "prune with inverted lists, then evaluate the vector condition" pattern
    the paper describes.
    """
    if top_k <= 0:
        raise ValueError("top_k must be > 0")
    scores: dict[int, float] = {}
    # Sorted iteration pins the float accumulation order: two queries
    # naming the same (word, weight) set in different orders must score
    # bit-identically, or answer caches keyed on the canonicalized set
    # would serve results that differ in the last ulp from a fresh
    # evaluation.
    for word, weight in sorted(weights.items()):
        if weight == 0.0:
            continue
        postings = fetch(word)
        contribution = weight * idf(ndocs, len(postings))
        if contribution == 0.0:
            continue
        for doc in postings:
            scores[doc] = scores.get(doc, 0.0) + contribution
    best = heapq.nlargest(
        top_k, scores.items(), key=lambda item: (item[1], -item[0])
    )
    return [ScoredDocument(doc_id=d, score=s) for d, s in best]


def query_from_document(words: Sequence[str]) -> dict[str, float]:
    """Build a vector query from a document's words (weight = in-document
    term frequency) — the paper's "a query may be derived from a document"
    workload, which is what makes vector queries long and frequent-word
    heavy."""
    weights: dict[str, float] = {}
    for word in words:
        weights[word] = weights.get(word, 0.0) + 1.0
    return weights
