"""Positional query conditions (paper §1).

"The query may also give additional conditions, such as requiring that
'cat' and 'dog' occur within so many words of each other, or that 'mouse'
occur within a title region."

Three evaluators over :class:`~repro.core.positional.PositionalPostings`:

* :func:`proximity_docs` — documents where two words occur within ``k``
  positions of each other;
* :func:`phrase_docs` — documents containing an exact word sequence
  (consecutive positions);
* :func:`region_docs` — documents where a word occurs inside a region.

All run by merging sorted posting lists, then checking positions only on
the merged candidates — the "prune with inverted lists first" discipline
the paper describes for conditional evaluation.
"""

from __future__ import annotations

from typing import Sequence

from ..core.positional import PositionalPostings, Region


def positions_within(
    a: Sequence[int], b: Sequence[int], k: int
) -> bool:
    """True when some position of ``a`` is within ``k`` of one of ``b``.

    Linear two-pointer scan over the sorted position lists.
    """
    if k < 0:
        raise ValueError("k must be >= 0")
    i = j = 0
    while i < len(a) and j < len(b):
        delta = a[i] - b[j]
        if abs(delta) <= k:
            return True
        if delta > 0:
            j += 1
        else:
            i += 1
    return False


def _candidates(payloads: Sequence[PositionalPostings]) -> list[int]:
    """Doc ids present in every payload (sorted-list intersection)."""
    if not payloads:
        return []
    docs = payloads[0].doc_ids
    for payload in payloads[1:]:
        other = set(payload.doc_ids)
        docs = [d for d in docs if d in other]
    return docs


def proximity_docs(
    a: PositionalPostings, b: PositionalPostings, k: int
) -> list[int]:
    """Documents where the two words occur within ``k`` words of each
    other (the paper's "within so many words" condition)."""
    out = []
    for doc in _candidates([a, b]):
        pa = a.positions_for(doc)
        pb = b.positions_for(doc)
        if pa and pb and positions_within(pa, pb, k):
            out.append(doc)
    return out


def phrase_docs(payloads: Sequence[PositionalPostings]) -> list[int]:
    """Documents containing the words as an exact consecutive phrase.

    Word ``i`` of the phrase must occur at position ``p + i`` for some
    anchor ``p``.  A single-word phrase degenerates to its posting list.
    """
    if not payloads:
        return []
    if len(payloads) == 1:
        return list(payloads[0].doc_ids)
    out = []
    for doc in _candidates(payloads):
        position_sets = [
            set(p.positions_for(doc) or ()) for p in payloads
        ]
        anchors = position_sets[0]
        if any(
            all((anchor + i) in position_sets[i] for i in range(1, len(payloads)))
            for anchor in anchors
        ):
            out.append(doc)
    return out


def region_docs(
    payload: PositionalPostings, region: Region
) -> list[int]:
    """Documents where the word occurs inside ``region`` (the paper's
    "occur within a title region" condition)."""
    return [
        posting.doc_id
        for posting in payload.entries
        if posting.regions & region
    ]
