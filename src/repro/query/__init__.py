"""Query substrate: boolean and vector IR models plus cost estimation."""

from .boolean import (
    QueryParseError,
    difference,
    evaluate,
    intersect,
    parse,
    union,
)
from .cost import BooleanWorkload, QueryCostModel, VectorWorkload
from .positional import phrase_docs, positions_within, proximity_docs, region_docs
from .reference import BruteForceIndex, materialized_blocks
from .scatter import gather_answers, merge_disjoint, scatter_fetch
from .streaming import (
    ListCursor,
    StreamStats,
    parse_flat,
    stream_intersect,
    stream_union,
    streamed_and,
    streamed_or,
)
from .vector import ScoredDocument, idf, query_from_document, rank

__all__ = [
    "BooleanWorkload",
    "BruteForceIndex",
    "ListCursor",
    "StreamStats",
    "QueryCostModel",
    "QueryParseError",
    "ScoredDocument",
    "VectorWorkload",
    "difference",
    "evaluate",
    "gather_answers",
    "idf",
    "intersect",
    "materialized_blocks",
    "merge_disjoint",
    "parse",
    "parse_flat",
    "scatter_fetch",
    "phrase_docs",
    "positions_within",
    "proximity_docs",
    "query_from_document",
    "region_docs",
    "rank",
    "stream_intersect",
    "stream_union",
    "streamed_and",
    "streamed_or",
    "union",
]
