"""Two-tier query evaluation: disk snapshot ∪ memory tier ∖ tombstones.

The merge layer over a published base snapshot and one
:class:`~repro.core.memtier.MemTierView`.  The correctness backbone is
that the two tiers partition the doc-id universe: every id below
``view.base_ndocs`` lives (fully) in the base snapshot, every buffered id
lives at or above it, and ids only ever grow — so the tiers' answer
fragments are disjoint sorted runs and boolean/streamed evaluation
*decomposes*:

    immediate(Q) = (base.search(Q) ∪ mem_eval(Q over [base_ndocs, ndocs)))
                   ∖ tombstones

Set operators are pointwise on per-document membership, and a document's
membership is decided entirely by the lists of its own tier (a buffered
document's postings exist only in the buffer; a published document's only
in the snapshot), so evaluating each tier against its own lists and
unioning is exactly the post-flush evaluation over the merged lists.
``NOT`` needs care only about the universe: the base evaluation
complements over ``[0, base_ndocs)`` and the memory evaluation over the
full ``[0, ndocs)`` restricted to buffered ids — together the post-flush
complement.  The final tombstone filter applies to both fragments, the
direct analogue of the paper's §3 rule that deletions filter answers, so
a buffered deletion hides snapshot-resident and buffered documents alike.

Vector ranking cannot delegate to the base (idf mixes the tiers through
global ``ndocs`` and df), so it reruns :func:`repro.query.vector.rank`
over the *merged* per-term fetch with the merged universe — the same
accumulation order as a post-flush ranking, hence bit-identical scores.

Read-op accounting: memory postings are free of I/O charge, the same
Figure-10 convention the core applies to the unflushed batch, so every
function here charges exactly the read ops the base snapshot alone
charged — an immediate answer costs what its snapshot-tier evaluation
would (the differential tests pin this equality).
"""

from __future__ import annotations

from ..textindex import QueryAnswer
from . import boolean as boolean_query
from . import streaming as streaming_query
from . import vector as vector_query

__all__ = [
    "fetch_postings",
    "search_boolean",
    "search_streamed",
    "search_vector_counted",
]


def _mem_fetch(view):
    """A fetch over the buffered postings only (term -> ascending ids).

    Lookup is exact-match, mirroring ``Vocabulary.lookup``: the boolean
    and streamed parsers lowercase words before fetching, vector weights
    pass raw keys, and the buffer's terms are tokenizer-lowercased — so
    a query key that would miss the vocabulary misses the buffer too.
    """

    def fetch(word: str) -> list[int]:
        return view.postings(word)

    return fetch


def _filter_tombstones(docs, tombstones) -> list[int]:
    if not tombstones:
        return list(docs)
    return [d for d in docs if d not in tombstones]


def fetch_postings(view, word: str) -> tuple[list[int], int]:
    """One word's live doc ids across both tiers, plus read ops charged.

    The base fragment is already deletion-filtered by the snapshot; the
    buffered fragment sits wholly above it, so concatenation preserves
    order; buffered tombstones filter both.
    """
    base_docs, read_ops = view.base.fetch_postings(word)
    docs = list(base_docs)
    docs.extend(view.postings(word))
    return _filter_tombstones(docs, view.tombstones), read_ops


def search_boolean(view, query: str) -> QueryAnswer:
    """Boolean AND/OR/NOT over both tiers; byte-identical to post-flush."""
    base_answer = view.base.search_boolean(query)
    docs = list(base_answer.doc_ids)
    if view.buffered_docs:
        base_ndocs = view.base_ndocs
        mem_docs = boolean_query.evaluate(
            query, _mem_fetch(view), view.ndocs
        )
        docs.extend(d for d in mem_docs if d >= base_ndocs)
    docs = _filter_tombstones(docs, view.tombstones)
    return QueryAnswer(doc_ids=docs, read_ops=base_answer.read_ops)


def search_streamed(view, query: str) -> QueryAnswer:
    """Flat AND/OR over both tiers with the streamed evaluator's economy.

    The base tier streams lazily inside the snapshot (early-exit I/O
    intact); the buffered tier is pure memory, merged by plain sorted-set
    arithmetic.  A conjunct that misses both tiers empties the answer
    with zero I/O, exactly like the facade.
    """
    words, operators = streaming_query.parse_flat(query)
    base_answer = view.base.search_streamed(query)
    docs = list(base_answer.doc_ids)
    if view.buffered_docs:
        base_ndocs = view.base_ndocs
        runs = [
            [d for d in view.postings(word) if d >= base_ndocs]
            for word in words
        ]
        if operators == {"OR"} or len(words) == 1:
            merged: set[int] = set()
            for run in runs:
                merged.update(run)
            docs.extend(sorted(merged))
        else:
            live = [set(run) for run in runs]
            conjunction = set.intersection(*live) if live else set()
            docs.extend(sorted(conjunction))
    docs = _filter_tombstones(docs, view.tombstones)
    return QueryAnswer(doc_ids=docs, read_ops=base_answer.read_ops)


def search_vector_counted(view, weights, top_k: int = 10):
    """Ranked vector query over the merged tiers plus read ops charged.

    Reruns the ranker with a merged per-term fetch and the global
    universe size, so idf and score accumulation are exactly what a
    post-flush ranking computes — including the sorted-term iteration
    that pins float addition order.
    """
    counter = [0]

    def fetch(word: str) -> list[int]:
        docs, read_ops = fetch_postings(view, word)
        counter[0] += read_ops
        return docs

    ranked = vector_query.rank(weights, fetch, view.ndocs, top_k=top_k)
    return ranked, counter[0]
