"""Boolean information-retrieval model: parser and merge-based evaluation.

The paper's example (§1): "in a boolean system, queries are boolean
expressions such as '(cat and dog) or mouse'.  ...the system would retrieve
the inverted list for 'cat' and 'dog', intersect them, and then would union
the result with the list for 'mouse'."  Section 3 adds the structural
requirement this module relies on: document identifiers appear in sorted
order in inverted lists and all updates append, so answers are computed by
**merging sorted lists**.

Grammar (case-insensitive keywords, standard precedence NOT > AND > OR)::

    expr   := term (OR term)*
    term   := factor (AND factor)*
    factor := NOT factor | '(' expr ')' | WORD

Evaluation needs a *fetcher* — any callable ``word -> sorted list of doc
ids`` — plus the document-id universe size for NOT.  The index facade
provides both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence


class QueryParseError(Exception):
    """Raised on malformed boolean query strings."""


# -- sorted-list merges ---------------------------------------------------------


def intersect(a: Sequence[int], b: Sequence[int]) -> list[int]:
    """Sorted-list intersection (two-pointer merge)."""
    out: list[int] = []
    i = j = 0
    while i < len(a) and j < len(b):
        if a[i] == b[j]:
            out.append(a[i])
            i += 1
            j += 1
        elif a[i] < b[j]:
            i += 1
        else:
            j += 1
    return out


def union(a: Sequence[int], b: Sequence[int]) -> list[int]:
    """Sorted-list union (two-pointer merge)."""
    out: list[int] = []
    i = j = 0
    while i < len(a) and j < len(b):
        if a[i] == b[j]:
            out.append(a[i])
            i += 1
            j += 1
        elif a[i] < b[j]:
            out.append(a[i])
            i += 1
        else:
            out.append(b[j])
            j += 1
    out.extend(a[i:])
    out.extend(b[j:])
    return out


def difference(a: Sequence[int], b: Sequence[int]) -> list[int]:
    """Sorted-list difference ``a - b`` (two-pointer merge)."""
    out: list[int] = []
    i = j = 0
    while i < len(a) and j < len(b):
        if a[i] == b[j]:
            i += 1
            j += 1
        elif a[i] < b[j]:
            out.append(a[i])
            i += 1
        else:
            j += 1
    out.extend(a[i:])
    return out


# -- AST -------------------------------------------------------------------------


@dataclass(frozen=True)
class Word:
    word: str

    def evaluate(self, fetch: Callable[[str], Sequence[int]], ndocs: int):
        return list(fetch(self.word))

    def words(self) -> set[str]:
        return {self.word}


@dataclass(frozen=True)
class And:
    left: object
    right: object

    def evaluate(self, fetch, ndocs):
        # NOT distributes into difference when one side is negated, which
        # avoids materializing the complement.
        if isinstance(self.right, Not):
            return difference(
                self.left.evaluate(fetch, ndocs),
                self.right.child.evaluate(fetch, ndocs),
            )
        if isinstance(self.left, Not):
            return difference(
                self.right.evaluate(fetch, ndocs),
                self.left.child.evaluate(fetch, ndocs),
            )
        return intersect(
            self.left.evaluate(fetch, ndocs), self.right.evaluate(fetch, ndocs)
        )

    def words(self) -> set[str]:
        return self.left.words() | self.right.words()


@dataclass(frozen=True)
class Or:
    left: object
    right: object

    def evaluate(self, fetch, ndocs):
        return union(
            self.left.evaluate(fetch, ndocs), self.right.evaluate(fetch, ndocs)
        )

    def words(self) -> set[str]:
        return self.left.words() | self.right.words()


@dataclass(frozen=True)
class Not:
    child: object

    def evaluate(self, fetch, ndocs):
        return difference(list(range(ndocs)), self.child.evaluate(fetch, ndocs))

    def words(self) -> set[str]:
        return self.child.words()


# -- parser -----------------------------------------------------------------------


def _lex(query: str) -> list[str]:
    tokens: list[str] = []
    i = 0
    while i < len(query):
        ch = query[i]
        if ch.isspace():
            i += 1
        elif ch in "()":
            tokens.append(ch)
            i += 1
        elif ch.isalnum():
            j = i
            while j < len(query) and query[j].isalnum():
                j += 1
            tokens.append(query[i:j])
            i = j
        else:
            raise QueryParseError(f"unexpected character {ch!r} in query")
    return tokens


class _Parser:
    def __init__(self, tokens: list[str]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self) -> str:
        token = self.peek()
        if token is None:
            raise QueryParseError("unexpected end of query")
        self.pos += 1
        return token

    def parse(self):
        node = self.expr()
        if self.peek() is not None:
            raise QueryParseError(f"trailing input at {self.peek()!r}")
        return node

    def expr(self):
        node = self.term()
        while (tok := self.peek()) is not None and tok.lower() == "or":
            self.take()
            node = Or(node, self.term())
        return node

    def term(self):
        node = self.factor()
        while (tok := self.peek()) is not None and tok.lower() == "and":
            self.take()
            node = And(node, self.factor())
        return node

    def factor(self):
        token = self.take()
        lowered = token.lower()
        if lowered == "not":
            return Not(self.factor())
        if token == "(":
            node = self.expr()
            if self.take() != ")":
                raise QueryParseError("missing closing parenthesis")
            return node
        if token == ")" or lowered in ("and", "or"):
            raise QueryParseError(f"unexpected token {token!r}")
        return Word(lowered)


def parse(query: str):
    """Parse a boolean query string into an AST."""
    tokens = _lex(query)
    if not tokens:
        raise QueryParseError("empty query")
    return _Parser(tokens).parse()


def evaluate(
    query: str, fetch: Callable[[str], Sequence[int]], ndocs: int
) -> list[int]:
    """Parse and evaluate a boolean query.

    ``fetch`` maps a lowercased word to its sorted posting list (empty for
    unknown words); ``ndocs`` bounds the universe for NOT.
    """
    return parse(query).evaluate(fetch, ndocs)
