"""Query-cost models for the two IR models (paper §5.2.1).

"Measuring query performance for a policy is difficult since the typical
workload depends on the information retrieval model.  For a typical boolean
IRM, a query contains a few words (less than 10) and the words tend to be
the less frequently appearing words ... Thus we would expect many query
words to reside in buckets for this model.  For a typical vector space IRM,
a query may be derived from a document; consequently the query often
contains many words (more than 100) and the words tend to be frequently
appearing words."

Cost accounting:

* a word with a **long list** costs one read per chunk (the directory is in
  memory; chunks are contiguous);
* a word with a **short list** costs one bucket read;
* an unknown word costs nothing (the directory and ``h(w)`` resolve it).

The vector-IRM aggregate is the paper's Figure-10 metric — average chunks
per long list — because vector queries are dominated by long-list words.
The boolean-IRM aggregate samples few-word queries biased toward infrequent
words and reports expected reads per query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..core.directory import Directory


@dataclass(frozen=True)
class BooleanWorkload:
    """Shape of a boolean query workload (paper's "less than 10 words",
    biased to infrequent words)."""

    words_per_query: int = 4
    #: Words are drawn from outside the top ``frequent_cutoff`` fraction of
    #: the vocabulary by total postings.
    frequent_cutoff: float = 0.02
    nqueries: int = 200
    seed: int = 7

    def __post_init__(self) -> None:
        if self.words_per_query <= 0 or self.nqueries <= 0:
            raise ValueError("words_per_query and nqueries must be > 0")
        if not 0.0 <= self.frequent_cutoff < 1.0:
            raise ValueError("frequent_cutoff must be in [0, 1)")


@dataclass(frozen=True)
class VectorWorkload:
    """Shape of a vector query workload (paper's "more than 100 words",
    frequency-weighted)."""

    words_per_query: int = 150
    nqueries: int = 50
    seed: int = 11

    def __post_init__(self) -> None:
        if self.words_per_query <= 0 or self.nqueries <= 0:
            raise ValueError("words_per_query and nqueries must be > 0")


class QueryCostModel:
    """Estimates expected read operations per query for an index state.

    ``word_counts`` maps every indexed word to its total postings — the
    frequency distribution queries are sampled against.  ``directory`` and
    ``bucket_words`` describe where each word's list lives.
    """

    def __init__(
        self,
        directory: Directory,
        bucket_words: set[int],
        word_counts: Mapping[int, int],
    ) -> None:
        self.directory = directory
        self.bucket_words = bucket_words
        self.word_counts = dict(word_counts)

    def reads_for_word(self, word: int) -> int:
        """Read ops to fetch one word's list."""
        entry = self.directory.get(word)
        if entry is not None:
            return entry.nchunks
        if word in self.bucket_words:
            return 1
        return 0

    def vector_cost(self, workload: VectorWorkload | None = None) -> float:
        """Expected reads per vector query word.

        Samples query words proportionally to their posting counts (queries
        derived from documents see words at document rates) and averages
        the per-word read cost.  Figure 10's directory-level metric is the
        long-list-only limit of this number.
        """
        wl = workload or VectorWorkload()
        words = np.array(sorted(self.word_counts), dtype=np.int64)
        if words.size == 0:
            return 0.0
        counts = np.array(
            [self.word_counts[int(w)] for w in words], dtype=np.float64
        )
        probs = counts / counts.sum()
        rng = np.random.default_rng(wl.seed)
        total_reads = 0
        nwords = wl.nqueries * wl.words_per_query
        for word in rng.choice(words, size=nwords, p=probs):
            total_reads += self.reads_for_word(int(word))
        return total_reads / nwords

    def boolean_cost(self, workload: BooleanWorkload | None = None) -> float:
        """Expected reads per boolean *query* (few infrequent words)."""
        wl = workload or BooleanWorkload()
        ranked = sorted(
            self.word_counts, key=lambda w: -self.word_counts[w]
        )
        cutoff = int(len(ranked) * wl.frequent_cutoff)
        infrequent = np.array(ranked[cutoff:], dtype=np.int64)
        if infrequent.size == 0:
            return 0.0
        rng = np.random.default_rng(wl.seed)
        total_reads = 0
        for _ in range(wl.nqueries):
            query = rng.choice(
                infrequent,
                size=min(wl.words_per_query, infrequent.size),
                replace=False,
            )
            total_reads += sum(self.reads_for_word(int(w)) for w in query)
        return total_reads / wl.nqueries
